//! The persistent, store-resident index subsystem.
//!
//! Before this layer existed, auxiliary access structures were an ad-hoc
//! per-backend affair: System E built its own `@id` hash at bulkload,
//! System G had none at all, and the query executor rebuilt its join hash
//! tables and lookup maps from scratch on **every execution** — a cache
//! hit in the plan cache still paid full build cost for its join sides.
//! Following the direction of disk-based index structures for structured
//! databases (EMBANKS; Gupta & Sudarshan), [`IndexManager`] promotes
//! indexes to a first-class store service: **built once, lazily, shared
//! everywhere** — across executions, across prepared queries, and across
//! the concurrent service layer's worker threads.
//!
//! Every store owns one manager ([`XmlStore::indexes`]) holding three
//! families of structures, all thread-safe and all built at most once:
//!
//! * **Element-name index** ([`ElementIndex`]) — tag → document-ordered
//!   posting list of element ids, plus a per-node subtree-end array. A
//!   predicate-free descendant step becomes an **IndexScan**: two binary
//!   searches stab the posting list with the context's subtree range and
//!   the matches stream off the slice, replacing full descendant walks
//!   (System A's parent-chain climbs, System F's interval scans, System
//!   G's DOM traversals).
//! * **Attribute-value index** ([`AttrIndex`]) — attribute value → first
//!   element carrying it, per attribute name. This single code path now
//!   answers [`XmlStore::lookup_id`] on *all seven* backends; the
//!   per-backend `@id` hash maps are retired.
//! * **Value indexes** — planner-signature-keyed slots holding the query
//!   layer's join build sides and decorrelated lookup indexes
//!   (canonical key → postings). The signatures exist only for
//!   loop-invariant (source, key-path) pairs, so a built slot is valid
//!   for the lifetime of the store; repeated executions of the join
//!   queries (Q8–Q12) probe instead of rebuilding.
//!
//! Builds are exactly-once under concurrency: the element index sits in a
//! [`OnceLock`], and attribute/value slots are per-key locks, so two
//! service workers racing on a cold index perform one build between them
//! (pinned by `tests/indexes.rs`). [`IndexManager::builds`] and
//! [`IndexManager::hits`] expose the counters the throughput report and
//! the zero-rebuild acceptance tests probe; [`IndexManager::size_bytes`]
//! feeds the store's resident-size accounting (Table 1).
//!
//! ## Validity of subtree stabbing
//!
//! Posting-list stabbing assumes node ids are assigned in document
//! (pre-)order, so a subtree occupies the contiguous id range
//! `[n, subtree_end(n)]`. All seven backends number nodes that way; the
//! build walk *verifies* it (ids strictly increase along the pre-order
//! traversal) and marks the index [`ElementIndex::ordered`] only when the
//! invariant holds. An unordered store — none exist today, but the check
//! keeps the contract honest — degrades gracefully: `postings_in` returns
//! `None` and both the planner and the executor fall back to the native
//! streamed axis cursors.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::sync::lock;
use crate::traits::{Node, XmlStore};

/// Rough per-entry overhead of a `HashMap<String, _>` (bucket + hash +
/// `String` header) used by the size accounting.
const MAP_ENTRY_OVERHEAD: usize = 48;

/// Visit every node of `store` in document (pre-)order — the shared walk
/// behind the whole-document index builds. (The element index keeps its
/// own specialized walk: it also needs subtree-exit events.)
fn preorder<S: XmlStore + ?Sized>(store: &S, mut visit: impl FnMut(Node)) {
    let root = store.root();
    visit(root);
    let mut stack = vec![store.children_iter(root)];
    while let Some(iter) = stack.last_mut() {
        match iter.next() {
            Some(child) => {
                visit(child);
                stack.push(store.children_iter(child));
            }
            None => {
                stack.pop();
            }
        }
    }
}

/// The element-name index: per tag, the document-ordered posting list of
/// element node ids, plus each node's subtree end for range stabbing.
pub struct ElementIndex {
    /// tag → ascending node ids (document order). Lists are `Arc`-shared
    /// so the transaction layer's incremental maintenance clones the map
    /// in O(tags) and replaces only the lists a commit touched.
    postings: HashMap<String, Arc<Vec<u32>>>,
    /// node id → largest id in its subtree (inclusive). Indexed by id.
    subtree_end: Arc<Vec<u32>>,
    /// Whether ids were verified to increase along the pre-order walk —
    /// the invariant subtree stabbing rests on.
    ordered: bool,
    /// Total elements indexed.
    elements: usize,
}

impl ElementIndex {
    /// Build by one pre-order walk over `store`'s streaming axis cursors.
    fn build<S: XmlStore + ?Sized>(store: &S) -> ElementIndex {
        let root = store.root();
        let mut postings: HashMap<String, Arc<Vec<u32>>> = HashMap::new();
        let mut subtree_end: Vec<u32> = vec![0; store.node_count()];
        let mut ordered = true;
        let mut elements = 0usize;

        let mut push_posting = |n: Node, elements: &mut usize| {
            if let Some(tag) = store.tag_of(n) {
                *elements += 1;
                match postings.get_mut(tag) {
                    // Arc never escapes during the build, so this is a
                    // plain in-place push.
                    Some(list) => Arc::make_mut(list).push(n.0),
                    None => {
                        postings.insert(tag.to_string(), Arc::new(vec![n.0]));
                    }
                }
            }
        };
        push_posting(root, &mut elements);

        // Iterative pre-order DFS. While ids stay monotonic, the last
        // visited id at the moment a node is popped is exactly the end of
        // its subtree.
        let mut last = root.0;
        if (root.index()) >= subtree_end.len() {
            subtree_end.resize(root.index() + 1, 0);
        }
        let mut stack = vec![(root, store.children_iter(root))];
        while let Some((_, iter)) = stack.last_mut() {
            match iter.next() {
                Some(child) => {
                    if child.0 <= last {
                        ordered = false;
                    }
                    last = last.max(child.0);
                    if child.index() >= subtree_end.len() {
                        subtree_end.resize(child.index() + 1, 0);
                    }
                    push_posting(child, &mut elements);
                    stack.push((child, store.children_iter(child)));
                }
                None => {
                    let (done, _) = stack.pop().expect("non-empty while looping");
                    subtree_end[done.index()] = last;
                }
            }
        }
        ElementIndex {
            postings,
            subtree_end: Arc::new(subtree_end),
            ordered,
            elements,
        }
    }

    /// Assemble an index from pre-computed parts — the transaction
    /// layer's incremental maintenance path. `ordered` must only be
    /// passed as `true` when every posting list is ascending in node id
    /// *and* `subtree_end` covers every listed id.
    pub fn from_parts(
        postings: HashMap<String, Arc<Vec<u32>>>,
        subtree_end: Arc<Vec<u32>>,
        ordered: bool,
        elements: usize,
    ) -> ElementIndex {
        ElementIndex {
            postings,
            subtree_end,
            ordered,
            elements,
        }
    }

    /// The shared posting map — cheap to clone (O(tags) `Arc` bumps) for
    /// copy-on-write maintenance.
    pub fn shared_postings(&self) -> &HashMap<String, Arc<Vec<u32>>> {
        &self.postings
    }

    /// The shared subtree-end array.
    pub fn shared_subtree_end(&self) -> &Arc<Vec<u32>> {
        &self.subtree_end
    }

    /// The largest id inside `n`'s subtree, when known.
    pub fn subtree_end_of(&self, n: Node) -> Option<u32> {
        self.subtree_end.get(n.index()).copied()
    }

    /// Whether subtree stabbing is valid (ids verified pre-order).
    pub fn ordered(&self) -> bool {
        self.ordered
    }

    /// Exact extent cardinality of `tag` over the whole document.
    pub fn count(&self, tag: &str) -> usize {
        self.postings.get(tag).map_or(0, |list| list.len())
    }

    /// Total elements indexed.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// The whole-document posting list of `tag`, ascending ids.
    pub fn postings(&self, tag: &str) -> &[u32] {
        self.postings.get(tag).map_or(&[], |list| list.as_slice())
    }

    /// The descendants of `n` with `tag` as a contiguous posting slice
    /// (two binary searches), or `None` when stabbing is invalid for this
    /// store and the caller must fall back to the native axis cursor.
    pub fn postings_in(&self, tag: &str, n: Node) -> Option<&[u32]> {
        if !self.ordered {
            return None;
        }
        let end = *self.subtree_end.get(n.index())?;
        let list = self.postings(tag);
        let lo = list.partition_point(|&x| x <= n.0);
        let hi = list.partition_point(|&x| x <= end);
        Some(&list[lo..hi])
    }

    /// Exact descendant count of `tag` under `n`, if stabbing is valid.
    pub fn count_in(&self, tag: &str, n: Node) -> Option<usize> {
        self.postings_in(tag, n).map(<[u32]>::len)
    }

    /// Resident bytes of the posting lists and the subtree-end array.
    pub fn size_bytes(&self) -> usize {
        let postings: usize = self
            .postings
            .iter()
            .map(|(tag, list)| tag.capacity() + list.capacity() * 4 + MAP_ENTRY_OVERHEAD)
            .sum();
        postings + self.subtree_end.capacity() * 4
    }
}

/// A per-attribute-name value index: value → the first (document-order)
/// element carrying `name="value"`. DTD `ID` values are unique, so "first"
/// is also "only" for the `id` index this backs.
pub struct AttrIndex {
    map: HashMap<String, u32>,
}

impl AttrIndex {
    fn build<S: XmlStore + ?Sized>(store: &S, name: &str) -> AttrIndex {
        let mut map = HashMap::new();
        preorder(store, |n| {
            // Owned pairs, not the borrowed cursor: disk-resident
            // backends answer `attributes()` straight off pinned pages
            // without populating their borrow-compat caches.
            for (attr, value) in store.attributes(n) {
                if attr == name && !map.contains_key(&value) {
                    map.insert(value, n.0);
                }
            }
        });
        AttrIndex { map }
    }

    /// Assemble from a pre-computed map — the transaction layer's
    /// incremental upsert path.
    pub fn from_map(map: HashMap<String, u32>) -> AttrIndex {
        AttrIndex { map }
    }

    /// A copy of the underlying map, for copy-on-write maintenance.
    pub fn clone_map(&self) -> HashMap<String, u32> {
        self.map.clone()
    }

    /// The element carrying this attribute value, if any.
    pub fn get(&self, value: &str) -> Option<Node> {
        self.map.get(value).map(|&id| Node(id))
    }

    /// Indexed distinct values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no value is indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Resident bytes.
    pub fn size_bytes(&self) -> usize {
        self.map
            .keys()
            .map(|k| k.capacity() + 4 + MAP_ENTRY_OVERHEAD)
            .sum()
    }
}

/// The typed child-value index for one child tag: parent node → the
/// *text nodes* of its `tag` children, exactly the items a
/// `…/tag/text()` tail produces (one entry per text node, in document
/// order — mixed content yields several, an empty child none). Storing
/// node ids rather than strings keeps the rewrite invisible to every
/// downstream operator, including node-order comparison (`<<`).
pub struct ChildValues {
    map: HashMap<u32, Vec<u32>>,
}

impl ChildValues {
    /// Build from the native descendant cursor: one pass over the tag's
    /// extent, recording each element's direct text children.
    pub fn build<S: XmlStore + ?Sized>(store: &S, tag: &str) -> ChildValues {
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        for child in store.descendants_named_iter(store.root(), tag) {
            let Some(parent) = store.parent(child) else {
                continue;
            };
            let values = map.entry(parent.0).or_default();
            for grandchild in store.children_iter(child) {
                if store.is_text_node(grandchild) {
                    values.push(grandchild.0);
                }
            }
        }
        ChildValues { map }
    }

    /// Assemble from a pre-computed map — the transaction layer's
    /// incremental upsert path.
    pub fn from_map(map: HashMap<u32, Vec<u32>>) -> ChildValues {
        ChildValues { map }
    }

    /// A copy of the underlying map, for copy-on-write maintenance.
    pub fn clone_map(&self) -> HashMap<u32, Vec<u32>> {
        self.map.clone()
    }

    /// The `tag/text()` nodes under parent `n` (empty when it has no
    /// such child, or only valueless ones).
    pub fn get(&self, n: Node) -> &[u32] {
        self.map.get(&n.0).map_or(&[], Vec::as_slice)
    }

    /// Resident bytes.
    pub fn size_bytes(&self) -> usize {
        self.map
            .values()
            .map(|v| MAP_ENTRY_OVERHEAD + v.capacity() * 4)
            .sum()
    }
}

/// A lazily filled slot for one keyed structure. The per-slot mutex makes
/// concurrent builders of the *same* key serialize — exactly one build.
type ValueSlot = Mutex<Option<(Arc<dyn Any + Send + Sync>, usize)>>;

/// Build/hit counters at one instant (see [`IndexManager::builds`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Structures built since the store was loaded (element index,
    /// attribute indexes, value-index slots; in non-persistent mode every
    /// value build counts).
    pub builds: u64,
    /// Probes answered from an already-built structure.
    pub hits: u64,
}

/// The per-store index service: lazily-built, exactly-once, thread-safe
/// shared structures (see the [module docs](self)).
pub struct IndexManager {
    element: OnceLock<ElementIndex>,
    attrs: Mutex<HashMap<String, Arc<OnceLock<Arc<AttrIndex>>>>>,
    values: Mutex<HashMap<String, Arc<ValueSlot>>>,
    /// Bytes held by filled value slots (tracked separately because the
    /// slot payloads are type-erased).
    value_bytes: AtomicU64,
    /// When false, value slots are bypassed: every
    /// [`IndexManager::value_or_build`] call rebuilds — the cold
    /// per-execution baseline the `table4_throughput` A/B measures
    /// against. Element and attribute indexes are unaffected.
    persistent: AtomicBool,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl Default for IndexManager {
    fn default() -> Self {
        IndexManager::new()
    }
}

impl IndexManager {
    /// A fresh manager with nothing built and persistence enabled.
    pub fn new() -> Self {
        IndexManager {
            element: OnceLock::new(),
            attrs: Mutex::new(HashMap::new()),
            values: Mutex::new(HashMap::new()),
            value_bytes: AtomicU64::new(0),
            persistent: AtomicBool::new(true),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The element-name index, building it on first use (exactly once,
    /// even under concurrent callers).
    pub fn element<S: XmlStore + ?Sized>(&self, store: &S) -> &ElementIndex {
        let mut built = false;
        let index = self.element.get_or_init(|| {
            built = true;
            self.builds.fetch_add(1, Ordering::Relaxed);
            ElementIndex::build(store)
        });
        if !built {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        index
    }

    /// The element-name index if it has been built, without triggering a
    /// build.
    pub fn element_if_built(&self) -> Option<&ElementIndex> {
        self.element.get()
    }

    /// The value index for attribute `name`, building it on first use
    /// (exactly once, even under concurrent callers).
    pub fn attribute<S: XmlStore + ?Sized>(&self, store: &S, name: &str) -> Arc<AttrIndex> {
        let slot = {
            let mut attrs = lock(&self.attrs);
            Arc::clone(attrs.entry(name.to_string()).or_default())
        };
        let mut built = false;
        let index = slot.get_or_init(|| {
            built = true;
            self.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(AttrIndex::build(store, name))
        });
        if !built {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(index)
    }

    /// `@id` lookup through the shared attribute-value index — the single
    /// code path behind [`XmlStore::lookup_id`] on every backend.
    pub fn lookup_id<S: XmlStore + ?Sized>(&self, store: &S, id: &str) -> Option<Node> {
        self.attribute(store, "id").get(id)
    }

    /// Fetch (or build exactly once) the type-erased value structure for
    /// the planner signature `sig`. `build` returns the structure plus its
    /// approximate resident bytes. With persistence disabled the slot is
    /// bypassed and every call rebuilds.
    pub fn value_or_build<E>(
        &self,
        sig: &str,
        build: impl FnOnce() -> Result<(Arc<dyn Any + Send + Sync>, usize), E>,
    ) -> Result<Arc<dyn Any + Send + Sync>, E> {
        if !self.persistent.load(Ordering::Relaxed) {
            self.builds.fetch_add(1, Ordering::Relaxed);
            return build().map(|(value, _)| value);
        }
        let slot = {
            let mut values = lock(&self.values);
            Arc::clone(values.entry(sig.to_string()).or_default())
        };
        let mut filled = lock(&slot);
        if let Some((value, _)) = filled.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(value));
        }
        let (value, bytes) = build()?;
        *filled = Some((Arc::clone(&value), bytes));
        self.value_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.builds.fetch_add(1, Ordering::Relaxed);
        Ok(value)
    }

    /// The typed child-value index for `tag`, or `None` when value
    /// persistence is disabled (the pre-index-layer baseline evaluates
    /// `tag/text()` tails generically). Built exactly once per tag.
    pub fn child_values<S: XmlStore + ?Sized>(
        &self,
        store: &S,
        tag: &str,
    ) -> Option<Arc<ChildValues>> {
        if !self.persistent() {
            return None;
        }
        let erased = self
            .value_or_build::<std::convert::Infallible>(&format!("cvals|{tag}"), || {
                let values = ChildValues::build(store, tag);
                let bytes = values.size_bytes();
                Ok((Arc::new(values) as Arc<dyn Any + Send + Sync>, bytes))
            })
            .expect("infallible build");
        erased.downcast::<ChildValues>().ok()
    }

    /// The typed child-value index for `tag` if (and only if) it has
    /// already been built — never triggers the extent walk. Streaming
    /// cursor opens use this peek so a cold, highly selective query
    /// keeps its O(result) time-to-first-item; the build happens in
    /// materializing (blocking) contexts instead.
    pub fn child_values_if_built(&self, tag: &str) -> Option<Arc<ChildValues>> {
        self.value_if_built(&format!("cvals|{tag}"))?
            .downcast::<ChildValues>()
            .ok()
    }

    /// The value structure for `sig` if (and only if) it has already been
    /// built — never triggers a build. Used by streaming cursors that
    /// prefer to stay lazy on a cold slot.
    pub fn value_if_built(&self, sig: &str) -> Option<Arc<dyn Any + Send + Sync>> {
        if !self.persistent.load(Ordering::Relaxed) {
            return None;
        }
        let slot = {
            let values = lock(&self.values);
            Arc::clone(values.get(sig)?)
        };
        let filled = lock(&slot);
        let hit = filled.as_ref().map(|(value, _)| Arc::clone(value));
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Toggle value-slot persistence (see [`IndexManager::value_or_build`]).
    pub fn set_persistent(&self, persistent: bool) {
        self.persistent.store(persistent, Ordering::Relaxed);
    }

    /// Whether value slots persist across executions.
    pub fn persistent(&self) -> bool {
        self.persistent.load(Ordering::Relaxed)
    }

    /// A manager pre-populated with structures carried over (and
    /// incrementally maintained) from a predecessor snapshot — the
    /// transaction layer's commit path. Seeded structures count as
    /// neither builds nor hits until probed.
    pub fn seeded(
        element: Option<ElementIndex>,
        attrs: Vec<(String, Arc<AttrIndex>)>,
        values: Vec<(String, Arc<dyn Any + Send + Sync>, usize)>,
    ) -> IndexManager {
        let manager = IndexManager::new();
        if let Some(index) = element {
            let _ = manager.element.set(index);
        }
        {
            let mut map = lock(&manager.attrs);
            for (name, index) in attrs {
                let slot = Arc::new(OnceLock::new());
                let _ = slot.set(index);
                map.insert(name, slot);
            }
        }
        {
            let mut map = lock(&manager.values);
            let mut bytes = 0u64;
            for (sig, value, size) in values {
                bytes += size as u64;
                map.insert(sig, Arc::new(Mutex::new(Some((value, size)))));
            }
            manager.value_bytes.store(bytes, Ordering::Relaxed);
        }
        manager
    }

    /// Every attribute index built so far, by name — what a commit
    /// carries forward into the successor snapshot's manager.
    pub fn built_attrs(&self) -> Vec<(String, Arc<AttrIndex>)> {
        lock(&self.attrs)
            .iter()
            .filter_map(|(name, slot)| Some((name.clone(), Arc::clone(slot.get()?))))
            .collect()
    }

    /// Every filled value slot `(signature, structure, bytes)` — what a
    /// commit filters through signature invalidation and carries forward.
    pub fn built_values(&self) -> Vec<(String, Arc<dyn Any + Send + Sync>, usize)> {
        lock(&self.values)
            .iter()
            .filter_map(|(sig, slot)| {
                let filled = lock(slot);
                let (value, bytes) = filled.as_ref()?;
                Some((sig.clone(), Arc::clone(value), *bytes))
            })
            .collect()
    }

    /// Eagerly build the store-walk indexes (element postings + `@id`
    /// values) — the warmup `Session`/`QueryService` expose so serving
    /// never pays a build on the request path. Value indexes warm on
    /// their first probing execution.
    pub fn build_all<S: XmlStore + ?Sized>(&self, store: &S) {
        self.element(store);
        self.attribute(store, "id");
    }

    /// Structures built since load.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Probes served from an already-built structure.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Both counters at once.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            builds: self.builds(),
            hits: self.hits(),
        }
    }

    /// Resident bytes of everything built so far — included in
    /// [`XmlStore::size_bytes`] and reported as its own Table 1 column.
    pub fn size_bytes(&self) -> usize {
        let mut total = self.element.get().map_or(0, ElementIndex::size_bytes);
        for slot in lock(&self.attrs).values() {
            total += slot.get().map_or(0, |index| index.size_bytes());
        }
        total + self.value_bytes.load(Ordering::Relaxed) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_store, SystemId};

    const SAMPLE: &str = r#"<site><regions><europe><item id="item0"><name>cup</name></item><item id="item1"><name>ring</name></item></europe></regions><people><person id="person0"><name>Alice</name></person></people></site>"#;

    #[test]
    fn element_postings_match_descendant_walks_on_every_backend() {
        for system in SystemId::ALL {
            let store = build_store(system, SAMPLE).unwrap();
            let store = store.as_ref();
            let index = store.indexes().element(store);
            assert!(index.ordered(), "{system} ids are pre-order");
            for tag in ["item", "name", "person", "ghost"] {
                let walked: Vec<u32> = store
                    .descendants_named_iter(store.root(), tag)
                    .map(|n| n.0)
                    .collect();
                assert_eq!(
                    index.postings_in(tag, store.root()).unwrap(),
                    &walked[..],
                    "{system} tag {tag}"
                );
                assert_eq!(index.count(tag), walked.len(), "{system} tag {tag}");
            }
            // Subtree scoping: names under europe exclude Alice's.
            let europe = store.descendants_named(store.root(), "europe")[0];
            assert_eq!(index.count_in("name", europe), Some(2), "{system}");
        }
    }

    #[test]
    fn attribute_index_is_built_once_and_shared() {
        let store = build_store(SystemId::G, SAMPLE).unwrap();
        let store = store.as_ref();
        let manager = store.indexes();
        assert_eq!(manager.builds(), 0);
        let first = manager.attribute(store, "id");
        assert_eq!(manager.builds(), 1);
        let again = manager.attribute(store, "id");
        assert_eq!(manager.builds(), 1, "second access reuses the build");
        assert!(manager.hits() >= 1);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(first.len(), 3);
        assert_eq!(first.get("person0"), store.lookup_id("person0").unwrap());
    }

    #[test]
    fn concurrent_element_builds_happen_exactly_once() {
        let store = build_store(SystemId::A, SAMPLE).unwrap();
        let store = store.as_ref();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    store.indexes().element(store).count("item");
                    store.indexes().lookup_id(store, "item0");
                });
            }
        });
        // 4 threads × 2 structures → exactly 2 builds between them.
        assert_eq!(store.indexes().builds(), 2);
    }

    #[test]
    fn value_slots_build_once_and_respect_the_persistence_toggle() {
        let manager = IndexManager::new();
        let build = || -> Result<_, std::convert::Infallible> {
            Ok((Arc::new(41usize) as Arc<dyn Any + Send + Sync>, 8))
        };
        let a = manager.value_or_build("sig", build).unwrap();
        assert_eq!(*a.downcast::<usize>().unwrap(), 41);
        assert_eq!(manager.builds(), 1);
        let _ = manager.value_or_build("sig", build).unwrap();
        assert_eq!(manager.builds(), 1, "slot hit");
        assert_eq!(manager.hits(), 1);
        assert!(manager.size_bytes() >= 8);

        manager.set_persistent(false);
        let _ = manager.value_or_build("sig2", build).unwrap();
        let _ = manager.value_or_build("sig2", build).unwrap();
        assert_eq!(manager.builds(), 3, "non-persistent mode rebuilds");
    }

    #[test]
    fn size_bytes_grows_as_indexes_build() {
        let store = build_store(SystemId::E, SAMPLE).unwrap();
        let store = store.as_ref();
        let before = store.size_bytes();
        store.indexes().build_all(store);
        let after = store.size_bytes();
        assert!(
            after > before,
            "built indexes must be accounted: {before} vs {after}"
        );
        assert_eq!(after - before, store.index_size_bytes());
    }
}
