//! System C — the DTD-inlined schema store.
//!
//! §7: "System C as mentioned needs a DTD to derive a storage schema; this
//! additional information helps to get favorable performance … System C
//! also uses a data mapping in the spirit of \[23\] (Shanmugasundaram et
//! al., shared inlining) that results in comparatively simple and efficient
//! execution plans and thus outperforms all other systems for Q2 and Q3."
//!
//! The mapping: the DTD's entity elements (person, item, open_auction, …)
//! become *entity tables* whose scalar children are inlined as columns;
//! set-valued children (bidder) become child tables with a positional
//! index. Document-centric content (description subtrees) falls back to a
//! fragmented representation, which this store reuses by composition.
//! The inlined access paths surface through
//! [`XmlStore::typed_child_value`] and [`XmlStore::positional_child`] —
//! that is why C wins the paper's Q2/Q3.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use xmark_rel::{Table, Value};
use xmark_xml::{Document, NodeId};

use crate::axis::{AttrIter, ChildIter, ChildrenNamed, DescendantsNamed};
use crate::fragmented::FragmentedStore;
use crate::index::IndexManager;
use crate::traits::{Node, PlannerCaps, PositionSpec, SystemId, XmlStore};

struct EntityTable {
    /// Scalar column names, aligned with table columns `1..`.
    columns: Vec<String>,
    rows: Table,
    /// node id → row.
    by_node: HashMap<u32, u32>,
}

/// The System C store.
pub struct InlinedStore {
    base: FragmentedStore,
    entities: Vec<EntityTable>,
    entity_of_tag: HashMap<String, usize>,
    /// Positional child index: auction node → bidder nodes in order.
    bidders: HashMap<u32, Vec<u32>>,
    metadata: AtomicU64,
}

impl InlinedStore {
    /// Bulkload with the benchmark's auction DTD: fragment (for
    /// document-centric content) and inline the DTD entities.
    pub fn load(xml: &str) -> Result<Self, xmark_xml::Error> {
        let dtd =
            xmark_xml::Dtd::parse(xmark_gen::AUCTION_DTD).expect("the bundled auction DTD parses");
        Ok(Self::from_document_with_dtd(
            &xmark_xml::parse_document(xml)?,
            &dtd,
        ))
    }

    /// Build from a parsed document using the bundled auction DTD.
    pub fn from_document(doc: &Document) -> Self {
        let dtd =
            xmark_xml::Dtd::parse(xmark_gen::AUCTION_DTD).expect("the bundled auction DTD parses");
        Self::from_document_with_dtd(doc, &dtd)
    }

    /// Build from a parsed document, deriving the inlined relational
    /// schema from `dtd` — the paper's "System C reads in a DTD and lets
    /// the user generate an optimized database schema".
    pub fn from_document_with_dtd(doc: &Document, dtd: &xmark_xml::Dtd) -> Self {
        let base = FragmentedStore::from_document(doc);
        let schema = dtd.derive_inlined_schema();
        let mut entities: Vec<EntityTable> = schema
            .iter()
            .map(|(tag, columns)| {
                let mut cols: Vec<&str> = vec!["node"];
                cols.extend(columns.iter().map(String::as_str));
                EntityTable {
                    columns: columns.clone(),
                    rows: Table::new(format!("ent_{tag}"), &cols),
                    by_node: HashMap::new(),
                }
            })
            .collect();
        let entity_of_tag: HashMap<String, usize> = schema
            .iter()
            .enumerate()
            .map(|(i, (tag, _))| (tag.clone(), i))
            .collect();
        let mut bidders: HashMap<u32, Vec<u32>> = HashMap::new();

        for id in 0..doc.node_count() as u32 {
            let node = NodeId(id);
            if doc.text(node).is_some() {
                continue;
            }
            let tag = doc.tag_name(node);
            if tag == "bidder" {
                let auction = doc.parent(node).expect("bidder has parent");
                bidders.entry(auction.0).or_default().push(id);
            }
            let Some(&eidx) = entity_of_tag.get(tag) else {
                continue;
            };
            let entity = &mut entities[eidx];
            let mut row: Vec<Value> = vec![Value::Int(id as i64)];
            for col in &entity.columns {
                // The unique scalar child `col` of this entity instance,
                // NULL when the optional element is absent.
                let mut value = Value::Null;
                for child in doc.children(node) {
                    if doc.is_element(child) && doc.tag_name(child) == col.as_str() {
                        value = Value::str(doc.string_value(child));
                        break;
                    }
                }
                row.push(value);
            }
            let rid = entity.rows.insert(row) as u32;
            entity.by_node.insert(id, rid);
        }

        InlinedStore {
            base,
            entities,
            entity_of_tag,
            bidders,
            metadata: AtomicU64::new(0),
        }
    }

    /// Number of entity tables (exposed for the Table 2 report).
    pub fn entity_table_count(&self) -> usize {
        self.entities.len()
    }
}

impl XmlStore for InlinedStore {
    fn system(&self) -> SystemId {
        SystemId::C
    }

    fn root(&self) -> Node {
        self.base.root()
    }

    fn node_count(&self) -> usize {
        self.base.node_count()
    }

    fn size_bytes(&self) -> usize {
        let entity_bytes: usize = self
            .entities
            .iter()
            .map(|e| e.rows.heap_size_bytes() + e.by_node.len() * 8)
            .sum();
        // Inlining *replaces* the per-scalar-tag fragments in a real
        // system; composition keeps both, so we discount the base by the
        // rows the entity tables absorbed rather than double-charging.
        // (The shared index bytes ride along inside `base.size_bytes()`.)
        self.base.size_bytes() + entity_bytes / 2
    }

    fn indexes(&self) -> &IndexManager {
        // One manager per store: the composed base owns it, and index
        // builds walk the same tree either way.
        self.base.indexes()
    }

    fn tag_of(&self, n: Node) -> Option<&str> {
        self.base.tag_of(n)
    }

    fn parent(&self, n: Node) -> Option<Node> {
        self.base.parent(n)
    }

    fn text(&self, n: Node) -> Option<&str> {
        self.base.text(n)
    }

    fn attribute(&self, n: Node, name: &str) -> Option<String> {
        self.base.attribute(n, name)
    }

    fn children_iter(&self, n: Node) -> ChildIter<'_> {
        self.base.children_iter(n)
    }

    fn children_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> ChildrenNamed<'a> {
        self.base.children_named_iter(n, tag)
    }

    fn descendants_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> DescendantsNamed<'a> {
        self.base.descendants_named_iter(n, tag)
    }

    fn attributes_iter(&self, n: Node) -> AttrIter<'_> {
        self.base.attributes_iter(n)
    }

    fn typed_child_value(&self, n: Node, tag: &str) -> Option<Option<String>> {
        let parent_tag = self.tag_of(n)?;
        let &eidx = self.entity_of_tag.get(parent_tag)?;
        let entity = &self.entities[eidx];
        let col = entity.columns.iter().position(|c| c == tag)?;
        let &row = entity.by_node.get(&n.0)?;
        match entity.rows.cell(row as usize, col + 1) {
            Value::Null => Some(None),
            v => Some(v.as_str().map(str::to_string)),
        }
    }

    fn positional_child(&self, n: Node, tag: &str, pos: PositionSpec) -> Option<Option<Node>> {
        if tag != "bidder" || self.tag_of(n) != Some("open_auction") {
            return None;
        }
        let list = match self.bidders.get(&n.0) {
            Some(list) => list.as_slice(),
            None => &[],
        };
        let picked = match pos {
            PositionSpec::First(k) => list.get(k.checked_sub(1)?),
            PositionSpec::Last => list.last(),
        };
        Some(picked.map(|&id| Node(id)))
    }

    fn begin_compile(&self) {
        self.metadata.store(0, Ordering::Relaxed);
        self.base.begin_compile();
    }

    fn compile_step(&self, tag: &str) -> usize {
        // The DTD-derived schema answers most steps from the (small) entity
        // catalog: one access. Steps outside the entity schema cost one
        // schema-tree probe plus one statistics read — still cheaper than
        // B's four-descriptor resolution, because the DTD pre-resolves
        // which fragment a tag lives in.
        if let Some(&eidx) = self.entity_of_tag.get(tag) {
            self.metadata.fetch_add(1, Ordering::Relaxed);
            self.entities[eidx].rows.len()
        } else {
            self.metadata.fetch_add(2, Ordering::Relaxed);
            self.base.fragment_cardinality(tag)
        }
    }

    fn metadata_accesses(&self) -> u64 {
        self.metadata.load(Ordering::Relaxed) + self.base.metadata_accesses()
    }

    fn planner_caps(&self) -> PlannerCaps {
        PlannerCaps {
            id_index: true,
            positional_index: true,
            inlined_values: true,
            // Entity tables and fragments both know their row counts.
            exact_statistics: true,
            // Descendant access delegates to the fragmented base, which
            // climbs parent chains — posting-list stabs win.
            element_index: true,
            value_index: true,
            child_values: true,
            ..PlannerCaps::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<site><open_auctions><open_auction id="open_auction0"><initial>12.50</initial><bidder><date>01/01/2000</date><time>10:00:00</time><personref person="person1"/><increase>3.00</increase></bidder><bidder><date>01/02/2000</date><time>11:00:00</time><personref person="person2"/><increase>40.00</increase></bidder><current>55.50</current><itemref item="item0"/><seller person="person0"/><quantity>1</quantity><type>Regular</type></open_auction></open_auctions><people><person id="person0"><name>Alice</name><emailaddress>a@x</emailaddress></person></people></site>"#;

    fn store() -> InlinedStore {
        InlinedStore::load(SAMPLE).unwrap()
    }

    #[test]
    fn inlines_scalar_children() {
        let s = store();
        let persons = s.descendants_named(s.root(), "person");
        assert_eq!(
            s.typed_child_value(persons[0], "name"),
            Some(Some("Alice".to_string()))
        );
        // Optional element absent → inlined NULL.
        assert_eq!(s.typed_child_value(persons[0], "homepage"), Some(None));
        // Not an inlined column → not answered here.
        assert_eq!(s.typed_child_value(persons[0], "watches"), None);
    }

    #[test]
    fn positional_bidder_access() {
        let s = store();
        let auctions = s.descendants_named(s.root(), "open_auction");
        let first = s
            .positional_child(auctions[0], "bidder", PositionSpec::First(1))
            .unwrap()
            .unwrap();
        let last = s
            .positional_child(auctions[0], "bidder", PositionSpec::Last)
            .unwrap()
            .unwrap();
        assert_ne!(first, last);
        assert_eq!(
            s.typed_child_value(first, "increase"),
            Some(Some("3.00".to_string()))
        );
        assert_eq!(
            s.typed_child_value(last, "increase"),
            Some(Some("40.00".to_string()))
        );
        // Out of range.
        assert_eq!(
            s.positional_child(auctions[0], "bidder", PositionSpec::First(5)),
            Some(None)
        );
    }

    #[test]
    fn generic_navigation_delegates_to_fragments() {
        let s = store();
        let naive = crate::naive::NaiveStore::load(SAMPLE).unwrap();
        let a: Vec<u32> = s
            .descendants_named(s.root(), "increase")
            .iter()
            .map(|n| n.0)
            .collect();
        let b: Vec<u32> = naive
            .descendants_named(naive.root(), "increase")
            .iter()
            .map(|n| n.0)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn compile_uses_small_entity_catalog() {
        let s = store();
        s.begin_compile();
        let card = s.compile_step("open_auction");
        assert_eq!(card, 1);
        assert_eq!(s.metadata_accesses(), 1);
    }

    #[test]
    fn dtd_derivation_produces_the_expected_schema() {
        let dtd = xmark_xml::Dtd::parse(xmark_gen::AUCTION_DTD).unwrap();
        let schema = dtd.derive_inlined_schema();
        let of = |tag: &str| -> Vec<String> {
            schema
                .iter()
                .find(|(t, _)| t == tag)
                .map(|(_, cols)| cols.clone())
                .unwrap_or_else(|| panic!("{tag} missing from derived schema"))
        };
        assert_eq!(
            of("person"),
            ["name", "emailaddress", "phone", "homepage", "creditcard"]
        );
        assert_eq!(of("bidder"), ["date", "time", "increase"]);
        assert_eq!(
            of("open_auction"),
            ["initial", "reserve", "current", "privacy", "quantity", "type"]
        );
        assert_eq!(of("closed_auction"), ["price", "date", "quantity", "type"]);
        // Set-valued or non-scalar children are never inlined.
        assert!(!of("person").contains(&"watches".to_string()));
        assert!(!of("item").contains(&"incategory".to_string()));
        assert!(!of("item").contains(&"description".to_string()));
    }

    #[test]
    fn inlined_auction_values() {
        let s = store();
        let auctions = s.descendants_named(s.root(), "open_auction");
        assert_eq!(
            s.typed_child_value(auctions[0], "initial"),
            Some(Some("12.50".to_string()))
        );
        assert_eq!(s.typed_child_value(auctions[0], "reserve"), Some(None));
    }
}
