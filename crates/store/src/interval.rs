//! Systems E and F — native containment-interval stores.
//!
//! Both store the tree as flat arrays in the (start, end, level) encoding
//! of Zhang et al. \[26\], which the paper cites for Q4: "mappings which
//! store the extent of tags, i.e., not only the position of the start tag
//! but also that of the corresponding end tag, may be able to exploit this
//! additional information".
//!
//! * **System E** additionally maintains per-tag extent lists sorted by
//!   start position, so `descendants_named` is a structural *stab join*
//!   (two binary searches), and an ID index for Q1.
//! * **System F** is the same physical layout without any secondary
//!   indexes: every structural step scans the interval. The E-vs-F delta is
//!   the ablation the benchmark's `ablation_interval` bench measures.

use std::collections::HashMap;

use xmark_xml::{Document, NodeId};

use crate::axis::{AttrIter, ChildIter, ChildrenNamed, DescendantsNamed};
use crate::index::IndexManager;
use crate::loader::{level_array, parent_array, subtree_ends, NONE};
use crate::traits::{Node, PlannerCaps, SystemId, XmlStore};

const TEXT_TAG: u16 = u16::MAX;

/// Streaming child cursor over the interval encoding: start at `n + 1`,
/// hop over each child's subtree via the `end` array — O(1) per child, no
/// allocation.
pub struct IntervalChildren<'a> {
    end: &'a [u32],
    cur: u32,
    /// Inclusive end of the parent's interval.
    stop: u32,
}

impl Iterator for IntervalChildren<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        if self.cur > self.stop {
            return None;
        }
        let n = Node(self.cur);
        self.cur = self.end[self.cur as usize] + 1;
        Some(n)
    }
}

/// [`IntervalChildren`] plus a tag-code test.
pub struct IntervalChildrenNamed<'a> {
    end: &'a [u32],
    tag_code: &'a [u16],
    cur: u32,
    stop: u32,
    code: u16,
}

impl Iterator for IntervalChildrenNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        while self.cur <= self.stop {
            let id = self.cur;
            self.cur = self.end[id as usize] + 1;
            if self.tag_code[id as usize] == self.code {
                return Some(Node(id));
            }
        }
        None
    }
}

impl IntervalChildrenNamed<'_> {
    /// Native block fill: one tight loop over the interval hop, no
    /// per-item cursor dispatch.
    pub(crate) fn next_block(&mut self, out: &mut crate::axis::NodeBatch) {
        while self.cur <= self.stop && !out.is_full() {
            let id = self.cur;
            self.cur = self.end[id as usize] + 1;
            if self.tag_code[id as usize] == self.code {
                out.push(Node(id));
            }
        }
    }
}

/// System F's descendant plan as a cursor: scan every position of the
/// interval and test the tag code.
pub struct IntervalScanNamed<'a> {
    tag_code: &'a [u16],
    cur: u32,
    /// Inclusive.
    stop: u32,
    code: u16,
}

impl Iterator for IntervalScanNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        while self.cur <= self.stop {
            let id = self.cur;
            self.cur += 1;
            if self.tag_code[id as usize] == self.code {
                return Some(Node(id));
            }
        }
        None
    }
}

impl IntervalScanNamed<'_> {
    /// Native block fill over the columnar tag array. The inner loop is
    /// a straight slice scan bounded by the batch's remaining room — the
    /// compiler sees both bounds up front, so the tag test is the only
    /// data-dependent branch left per position.
    pub(crate) fn next_block(&mut self, out: &mut crate::axis::NodeBatch) {
        while self.cur <= self.stop && !out.is_full() {
            let lo = self.cur as usize;
            let hi = (self.stop as usize + 1)
                .min(lo + out.room() * 4)
                .max(lo + 1);
            for (off, &code) in self.tag_code[lo..hi].iter().enumerate() {
                if code == self.code {
                    out.push(Node((lo + off) as u32));
                    if out.is_full() {
                        self.cur = (lo + off + 1) as u32;
                        return;
                    }
                }
            }
            self.cur = hi as u32;
        }
    }
}

/// Shared physical layout of Systems E and F.
pub struct IntervalStore {
    indexed: bool,
    parent: Vec<u32>,
    end: Vec<u32>,
    #[allow(dead_code)] // level is part of the [26] encoding; kept for ablations.
    level: Vec<u16>,
    tag_code: Vec<u16>,
    tag_names: Vec<String>,
    tag_lookup: HashMap<String, u16>,
    text: Vec<Box<str>>,
    attrs: HashMap<u32, Vec<(String, String)>>,
    root: u32,
    /// E only: tag → ascending start positions.
    tag_extents: Vec<Vec<u32>>,
    indexes: IndexManager,
}

impl IntervalStore {
    /// Bulkload System E (with secondary indexes).
    pub fn load_indexed(xml: &str) -> Result<Self, xmark_xml::Error> {
        Ok(Self::from_document(&xmark_xml::parse_document(xml)?, true))
    }

    /// Bulkload System F (scan-based, no secondary indexes).
    pub fn load_scan(xml: &str) -> Result<Self, xmark_xml::Error> {
        Ok(Self::from_document(&xmark_xml::parse_document(xml)?, false))
    }

    /// Build from a parsed document.
    pub fn from_document(doc: &Document, indexed: bool) -> Self {
        let n = doc.node_count();
        let parent = parent_array(doc);
        let end = subtree_ends(doc);
        let level = level_array(doc);
        let mut tag_code = vec![TEXT_TAG; n];
        let mut tag_names: Vec<String> = Vec::new();
        let mut tag_lookup: HashMap<String, u16> = HashMap::new();
        let mut text: Vec<Box<str>> = vec![Box::from(""); n];
        let mut attrs: HashMap<u32, Vec<(String, String)>> = HashMap::new();
        let mut tag_extents: Vec<Vec<u32>> = Vec::new();

        for id in 0..n as u32 {
            let node = NodeId(id);
            if let Some(t) = doc.text(node) {
                text[id as usize] = Box::from(t);
                continue;
            }
            let tag = doc.tag_name(node);
            let code = match tag_lookup.get(tag) {
                Some(&c) => c,
                None => {
                    let c = tag_names.len() as u16;
                    tag_names.push(tag.to_string());
                    tag_lookup.insert(tag.to_string(), c);
                    tag_extents.push(Vec::new());
                    c
                }
            };
            tag_code[id as usize] = code;
            if indexed {
                tag_extents[code as usize].push(id);
            }
            let node_attrs: Vec<(String, String)> = doc
                .attributes(node)
                .iter()
                .map(|(sym, v)| (doc.interner().resolve(*sym).to_string(), v.clone()))
                .collect();
            if !node_attrs.is_empty() {
                attrs.insert(id, node_attrs);
            }
        }
        if !indexed {
            tag_extents.clear();
            tag_extents.shrink_to_fit();
        }

        IntervalStore {
            indexed,
            parent,
            end,
            level,
            tag_code,
            tag_names,
            tag_lookup,
            text,
            attrs,
            root: doc.root_element().0,
            tag_extents,
            indexes: IndexManager::new(),
        }
    }

    /// Whether this instance is the indexed variant (System E).
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }
}

impl XmlStore for IntervalStore {
    fn system(&self) -> SystemId {
        if self.indexed {
            SystemId::E
        } else {
            SystemId::F
        }
    }

    fn root(&self) -> Node {
        Node(self.root)
    }

    fn node_count(&self) -> usize {
        self.parent.len()
    }

    fn size_bytes(&self) -> usize {
        let n = self.parent.len();
        let mut total = n
            * (2 * std::mem::size_of::<u32>()
                + 2 * std::mem::size_of::<u16>()
                + std::mem::size_of::<Box<str>>());
        total += self.text.iter().map(|t| t.len()).sum::<usize>();
        for list in self.attrs.values() {
            total += list
                .iter()
                .map(|(k, v)| k.capacity() + v.capacity() + 48)
                .sum::<usize>();
        }
        total += self
            .tag_extents
            .iter()
            .map(|e| e.capacity() * 4)
            .sum::<usize>();
        // Catalog strings, previously unaccounted: the per-tag name table
        // and its lookup map are real resident structures.
        total += self
            .tag_names
            .iter()
            .map(|t| t.capacity() + std::mem::size_of::<String>())
            .sum::<usize>();
        total += self
            .tag_lookup
            .keys()
            .map(|k| k.capacity() + 2 + 48)
            .sum::<usize>();
        total += self.indexes.size_bytes();
        total
    }

    fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    fn tag_of(&self, n: Node) -> Option<&str> {
        match self.tag_code[n.index()] {
            TEXT_TAG => None,
            c => Some(&self.tag_names[c as usize]),
        }
    }

    fn parent(&self, n: Node) -> Option<Node> {
        match self.parent[n.index()] {
            NONE => None,
            p => Some(Node(p)),
        }
    }

    fn children_iter(&self, n: Node) -> ChildIter<'_> {
        // Children of n are the nodes directly inside its interval: start
        // at n+1, then hop over each child's subtree — O(#children).
        ChildIter::Interval(IntervalChildren {
            end: &self.end,
            cur: n.0 + 1,
            stop: self.end[n.index()],
        })
    }

    fn children_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> ChildrenNamed<'a> {
        let Some(&code) = self.tag_lookup.get(tag) else {
            return ChildrenNamed::Empty;
        };
        ChildrenNamed::Interval(IntervalChildrenNamed {
            end: &self.end,
            tag_code: &self.tag_code,
            cur: n.0 + 1,
            stop: self.end[n.index()],
            code,
        })
    }

    fn text(&self, n: Node) -> Option<&str> {
        if self.tag_code[n.index()] == TEXT_TAG {
            Some(&self.text[n.index()])
        } else {
            None
        }
    }

    fn attribute(&self, n: Node, name: &str) -> Option<String> {
        self.attrs
            .get(&n.0)?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    }

    fn attributes_iter(&self, n: Node) -> AttrIter<'_> {
        match self.attrs.get(&n.0) {
            Some(list) => AttrIter::Pairs(list.iter()),
            None => AttrIter::Empty,
        }
    }

    fn descendants_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> DescendantsNamed<'a> {
        let Some(&code) = self.tag_lookup.get(tag) else {
            return DescendantsNamed::Empty;
        };
        let end = self.end[n.index()];
        if self.indexed {
            // Structural stab join: binary-search the tag's start list for
            // the interval (n, end] and stream the slice.
            let extent = &self.tag_extents[code as usize];
            let lo = extent.partition_point(|&x| x <= n.0);
            let hi = extent.partition_point(|&x| x <= end);
            DescendantsNamed::Extent(extent[lo..hi].iter())
        } else {
            // System F: scan the whole interval.
            DescendantsNamed::IntervalScan(IntervalScanNamed {
                tag_code: &self.tag_code,
                cur: n.0 + 1,
                stop: end,
                code,
            })
        }
    }

    fn count_descendants_named(&self, n: Node, tag: &str) -> usize {
        if self.indexed {
            let Some(&code) = self.tag_lookup.get(tag) else {
                return 0;
            };
            let extent = &self.tag_extents[code as usize];
            let lo = extent.partition_point(|&x| x <= n.0);
            let hi = extent.partition_point(|&x| x <= self.end[n.index()]);
            hi - lo
        } else {
            self.descendants_named_iter(n, tag).count()
        }
    }

    fn compile_step(&self, tag: &str) -> usize {
        if self.indexed {
            self.tag_lookup
                .get(tag)
                .map(|&c| self.tag_extents[c as usize].len())
                .unwrap_or(0)
        } else {
            // F has no statistics; its heuristic optimizer guesses.
            0
        }
    }

    fn planner_caps(&self) -> PlannerCaps {
        if self.indexed {
            PlannerCaps {
                id_index: true,
                // Counting is extent partition-point arithmetic.
                summary_counts: true,
                exact_statistics: true,
                // Native per-tag extents already are a descendant index —
                // the shared posting lists would duplicate them.
                value_index: true,
                child_values: true,
                ..PlannerCaps::default()
            }
        } else {
            // System F: intervals only — generic plans, no statistics. The
            // shared store-layer indexes still serve it: posting-list
            // stabs replace full interval scans.
            PlannerCaps {
                element_index: true,
                value_index: true,
                child_values: true,
                ..PlannerCaps::default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<site><regions><europe><item id="item0"><name>cup</name></item><item id="item1"><name>gold coin</name></item></europe></regions><people><person id="person0"><name>Alice</name></person></people></site>"#;

    fn both() -> (IntervalStore, IntervalStore) {
        (
            IntervalStore::load_indexed(SAMPLE).unwrap(),
            IntervalStore::load_scan(SAMPLE).unwrap(),
        )
    }

    #[test]
    fn e_and_f_navigate_identically() {
        let (e, f) = both();
        for store in [&e, &f] {
            let root = store.root();
            assert_eq!(store.tag_of(root), Some("site"));
            let items = store.descendants_named(root, "item");
            assert_eq!(items.len(), 2);
            assert_eq!(store.attribute(items[0], "id").as_deref(), Some("item0"));
            assert_eq!(store.string_value(items[1]), "gold coin");
        }
    }

    #[test]
    fn children_hop_over_subtrees() {
        let (e, _) = both();
        let root = e.root();
        let kids: Vec<_> = e
            .children(root)
            .iter()
            .map(|&c| e.tag_of(c).unwrap().to_string())
            .collect();
        assert_eq!(kids, vec!["regions", "people"]);
    }

    #[test]
    fn stab_join_is_scoped_to_subtree() {
        let (e, f) = both();
        for store in [&e, &f] {
            let people = store.descendants_named(store.root(), "people")[0];
            let names = store.descendants_named(people, "name");
            assert_eq!(names.len(), 1, "only Alice's name is under people");
        }
    }

    #[test]
    fn both_variants_answer_id_lookups_via_the_shared_index() {
        let (e, f) = both();
        let hit = e.lookup_id("person0").unwrap().unwrap();
        assert_eq!(e.tag_of(hit), Some("person"));
        // F has no *architectural* ID index (the planner still scans for
        // Q1), but the shared store-layer attribute index answers direct
        // lookups on it too.
        assert_eq!(f.lookup_id("person0").unwrap(), Some(hit));
        assert_eq!(f.lookup_id("ghost").unwrap(), None);
        assert!(!f.planner_caps().id_index);
    }

    #[test]
    fn counts_agree_between_variants() {
        let (e, f) = both();
        for tag in ["item", "name", "ghost"] {
            assert_eq!(
                e.count_descendants_named(e.root(), tag),
                f.count_descendants_named(f.root(), tag),
                "tag {tag}"
            );
        }
    }

    #[test]
    fn f_reports_no_statistics() {
        let (e, f) = both();
        assert_eq!(e.compile_step("item"), 2);
        assert_eq!(f.compile_step("item"), 0);
    }
}
