//! XML storage backends for the XMark benchmark — one per architecture
//! family the paper evaluates (§7).
//!
//! | Backend | Paper system | Architecture |
//! |---------|--------------|--------------|
//! | [`EdgeStore`] | A | relational, monolithic edge table |
//! | [`FragmentedStore`] | B | relational, one relation per tag |
//! | [`InlinedStore`] | C | relational, DTD-inlined entity tables |
//! | [`SummaryStore`] | D | main-memory, structural summary |
//! | [`IntervalStore`] (indexed) | E | native containment intervals + tag indexes |
//! | [`IntervalStore`] (scan) | F | native containment intervals, scans |
//! | [`NaiveStore`] | G | embedded interpretive DOM walker |
//! | [`PagedStore`] | H *(extension)* | disk-resident paged intervals, buffer pool + WAL |
//!
//! All backends implement [`XmlStore`]; the query engine in `xmark-query`
//! is backend-agnostic, so a query's cost profile on a backend is decided
//! by the access paths that backend provides — the paper's central claim:
//! "The physical XML mapping has a far-reaching influence on the complexity
//! of query plans."
//!
//! On top of the per-architecture access paths sits the **persistent
//! index subsystem** ([`index::IndexManager`], one per store via
//! [`XmlStore::indexes`]): lazily-built, exactly-once, thread-safe
//! element-name postings (the planner's IndexScan), a shared
//! attribute-value index (one `lookup_id` code path for all seven
//! backends), typed child-value indexes (`tag/text()` tails), and
//! signature-keyed value slots holding the query layer's join build
//! sides across executions. [`PlannerCaps`] tells the planner which of
//! the two layers serves each step; index memory is included in
//! [`XmlStore::size_bytes`] and reported separately via
//! [`XmlStore::index_size_bytes`].
//!
//! Backend **H** is the one non-RAM-resident mapping: the [`paged`]
//! subsystem stores the interval encoding in a checksummed page file
//! served through a bounded pin/unpin buffer pool with an append-only
//! WAL underneath (see the [`paged`] module docs for the layering). Its
//! [`XmlStore::size_bytes`] reports *resident* memory (pool frames +
//! catalog + indexes) while [`XmlStore::disk_bytes`] reports the file —
//! the rows `table1_bulkload` prints separately.

pub mod axis;
pub mod edge;
pub mod fragmented;
pub mod index;
pub mod inlined;
pub mod interval;
pub mod loader;
pub mod naive;
pub mod paged;
pub mod shard;
pub mod summary;
pub mod sync;
pub mod traits;

pub use axis::{AttrIter, ChildIter, ChildrenNamed, DescendantsNamed, NodeBatch};
pub use edge::EdgeStore;
pub use fragmented::FragmentedStore;
pub use index::{AttrIndex, ChildValues, ElementIndex, IndexManager, IndexStats};
pub use inlined::InlinedStore;
pub use interval::IntervalStore;
pub use naive::NaiveStore;
pub use paged::{PagedStore, PoolStats, ReplacerKind, DEFAULT_POOL_PAGES};
pub use shard::{ShardError, ShardedStore};
pub use summary::SummaryStore;
pub use traits::{Node, PlannerCaps, PositionSpec, StepEstimate, StoreSource, SystemId, XmlStore};

// Compile-time proof that every backend can be shared across threads:
// `XmlStore` carries `Send + Sync` supertraits, and each concrete store
// must satisfy them (metadata counters are relaxed atomics, everything
// else is immutable after bulkload). A backend that regresses to `Cell`,
// `Rc`, or `RefCell` fails to compile right here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EdgeStore>();
    assert_send_sync::<FragmentedStore>();
    assert_send_sync::<InlinedStore>();
    assert_send_sync::<SummaryStore>();
    assert_send_sync::<IntervalStore>();
    assert_send_sync::<NaiveStore>();
    assert_send_sync::<PagedStore>();
    assert_send_sync::<ShardedStore>();
    assert_send_sync::<Box<dyn XmlStore>>();
    assert_send_sync::<std::sync::Arc<dyn XmlStore>>();
};

/// Bulkload `xml` into the store modeling `system`.
///
/// # Errors
/// Propagates XML parse errors.
pub fn build_store(system: SystemId, xml: &str) -> Result<Box<dyn XmlStore>, xmark_xml::Error> {
    Ok(match system {
        SystemId::A => Box::new(EdgeStore::load(xml)?),
        SystemId::B => Box::new(FragmentedStore::load(xml)?),
        SystemId::C => Box::new(InlinedStore::load(xml)?),
        SystemId::D => Box::new(SummaryStore::load(xml)?),
        SystemId::E => Box::new(IntervalStore::load_indexed(xml)?),
        SystemId::F => Box::new(IntervalStore::load_scan(xml)?),
        SystemId::G => Box::new(NaiveStore::load(xml)?),
        SystemId::H => Box::new(PagedStore::load_temp(xml, DEFAULT_POOL_PAGES)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_system() {
        let xml = r#"<site><people><person id="person0"><name>A</name></person></people></site>"#;
        for system in SystemId::EXTENDED {
            let store = build_store(system, xml).unwrap();
            assert_eq!(store.system(), system);
            assert_eq!(store.tag_of(store.root()), Some("site"));
            assert!(store.size_bytes() > 0);
        }
    }
}
