//! Shared bulkload helpers.
//!
//! Every store builds from a parsed [`Document`] whose node ids are
//! document (pre-)order; the helpers here compute the derived structure
//! several backends need.

use xmark_xml::{Document, NodeId};

/// Sentinel for "no node" in packed `u32` arrays.
pub const NONE: u32 = u32::MAX;

/// For every node, the largest node id in its subtree (itself for leaves).
/// Descendants of `n` are exactly the ids in `(n, ends[n]]` — the
/// containment-interval encoding of \[26\] (Zhang et al.), which Systems E/F
/// store directly and System D uses to range-filter summary extents.
pub fn subtree_ends(doc: &Document) -> Vec<u32> {
    let n = doc.node_count();
    let mut ends = vec![0u32; n];
    // Node ids are pre-order, so processing in reverse id order guarantees
    // children are finished before their parent.
    for id in (0..n as u32).rev() {
        let node = NodeId(id);
        let mut end = id;
        let mut child = doc.first_child(node);
        while let Some(c) = child {
            end = end.max(ends[c.0 as usize]);
            child = doc.next_sibling(c);
        }
        ends[id as usize] = end;
    }
    ends
}

/// Per-node parent array (`NONE` for the root and unattached nodes).
pub fn parent_array(doc: &Document) -> Vec<u32> {
    (0..doc.node_count() as u32)
        .map(|id| doc.parent(NodeId(id)).map_or(NONE, |p| p.0))
        .collect()
}

/// Per-node depth (root = 0).
pub fn level_array(doc: &Document) -> Vec<u16> {
    let parents = parent_array(doc);
    let mut levels = vec![0u16; doc.node_count()];
    // Ids are pre-order, so a parent's level is computed before its child's.
    for id in 0..doc.node_count() {
        let p = parents[id];
        if p != NONE {
            levels[id] = levels[p as usize] + 1;
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        // ids: site=0 a=1 t(x)=2 b=3 c=4
        xmark_xml::parse_document("<site><a>x<b/></a><c/></site>").unwrap()
    }

    #[test]
    fn subtree_ends_bound_descendants() {
        let d = doc();
        let ends = subtree_ends(&d);
        assert_eq!(ends, vec![4, 3, 2, 3, 4]);
    }

    #[test]
    fn parent_array_matches_dom() {
        let d = doc();
        assert_eq!(parent_array(&d), vec![NONE, 0, 1, 1, 0]);
    }

    #[test]
    fn levels_count_depth() {
        let d = doc();
        assert_eq!(level_array(&d), vec![0, 1, 2, 2, 1]);
    }
}
