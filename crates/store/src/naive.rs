//! System G — the embedded, interpretive DOM walker.
//!
//! §7: "Query processors that are intended to serve as embedded query
//! processors in programming languages and aim at small to medium sized
//! documents." System G failed at scaling factor 1.0 and was measured at
//! 100 kB and 1 MB (Fig. 4). Its architecture: keep the parsed tree, build
//! **no** secondary structures, and answer every query by interpretive
//! traversal — even the Q1 ID lookup is a full scan.

use xmark_xml::Document;

use crate::traits::{Node, SystemId, XmlStore};

/// The naive DOM store.
pub struct NaiveStore {
    doc: Document,
}

impl NaiveStore {
    /// Bulkload: parse and keep the DOM; nothing else is built.
    pub fn load(xml: &str) -> Result<Self, xmark_xml::Error> {
        Ok(NaiveStore {
            doc: xmark_xml::parse_document(xml)?,
        })
    }

    /// Access to the underlying document (used by tests).
    pub fn document(&self) -> &Document {
        &self.doc
    }
}

impl XmlStore for NaiveStore {
    fn system(&self) -> SystemId {
        SystemId::G
    }

    fn root(&self) -> Node {
        Node(self.doc.root_element().0)
    }

    fn node_count(&self) -> usize {
        self.doc.node_count()
    }

    fn size_bytes(&self) -> usize {
        self.doc.heap_size_bytes()
    }

    fn tag_of(&self, n: Node) -> Option<&str> {
        let id = xmark_xml::NodeId(n.0);
        self.doc.tag(id).map(|sym| self.doc.interner().resolve(sym))
    }

    fn parent(&self, n: Node) -> Option<Node> {
        self.doc.parent(xmark_xml::NodeId(n.0)).map(|p| Node(p.0))
    }

    fn children(&self, n: Node) -> Vec<Node> {
        self.doc
            .children(xmark_xml::NodeId(n.0))
            .map(|c| Node(c.0))
            .collect()
    }

    fn text(&self, n: Node) -> Option<&str> {
        self.doc.text(xmark_xml::NodeId(n.0))
    }

    fn attribute(&self, n: Node, name: &str) -> Option<String> {
        self.doc
            .attribute(xmark_xml::NodeId(n.0), name)
            .map(str::to_string)
    }

    fn attributes(&self, n: Node) -> Vec<(String, String)> {
        self.doc
            .attributes(xmark_xml::NodeId(n.0))
            .iter()
            .map(|(sym, v)| (self.doc.interner().resolve(*sym).to_string(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<site><people><person id="person0"><name>Alice</name></person><person id="person1"><name>Bob</name></person></people></site>"#;

    #[test]
    fn navigates_like_the_dom() {
        let store = NaiveStore::load(SAMPLE).unwrap();
        let root = store.root();
        assert_eq!(store.tag_of(root), Some("site"));
        let people = store.children_named(root, "people");
        assert_eq!(people.len(), 1);
        let persons = store.children_named(people[0], "person");
        assert_eq!(persons.len(), 2);
        assert_eq!(store.attribute(persons[0], "id").as_deref(), Some("person0"));
        assert_eq!(store.string_value(persons[1]), "Bob");
    }

    #[test]
    fn has_no_id_index() {
        let store = NaiveStore::load(SAMPLE).unwrap();
        assert!(store.lookup_id("person0").is_none());
    }

    #[test]
    fn descendants_walk_the_tree() {
        let store = NaiveStore::load(SAMPLE).unwrap();
        let names = store.descendants_named(store.root(), "name");
        assert_eq!(names.len(), 2);
        // Document order.
        assert!(names[0] < names[1]);
    }

    #[test]
    fn serializes_subtrees() {
        let store = NaiveStore::load(SAMPLE).unwrap();
        let persons = store.descendants_named(store.root(), "person");
        let mut out = String::new();
        store.serialize_node(persons[0], &mut out);
        assert_eq!(out, r#"<person id="person0"><name>Alice</name></person>"#);
    }
}
