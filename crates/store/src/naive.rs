//! System G — the embedded, interpretive DOM walker.
//!
//! §7: "Query processors that are intended to serve as embedded query
//! processors in programming languages and aim at small to medium sized
//! documents." System G failed at scaling factor 1.0 and was measured at
//! 100 kB and 1 MB (Fig. 4). Its architecture: keep the parsed tree, build
//! **no** secondary structures, and answer every query by interpretive
//! traversal — even the Q1 ID lookup is a full scan.

use xmark_xml::dom::{Children, Descendants, Sym};
use xmark_xml::Document;

use crate::axis::{AttrIter, ChildIter, ChildrenNamed, DescendantsNamed};
use crate::index::IndexManager;
use crate::traits::{Node, PlannerCaps, SystemId, XmlStore};

/// Streaming cursor over a DOM node's children.
pub struct DomChildren<'a> {
    iter: Children<'a>,
}

impl Iterator for DomChildren<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        self.iter.next().map(|c| Node(c.0))
    }
}

/// Streaming cursor over a DOM node's element children with a given tag,
/// tested by interned symbol (an integer compare per child).
pub struct DomChildrenNamed<'a> {
    doc: &'a Document,
    iter: Children<'a>,
    sym: Sym,
}

impl Iterator for DomChildrenNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        self.iter
            .by_ref()
            .find(|&c| self.doc.tag(c) == Some(self.sym))
            .map(|c| Node(c.0))
    }
}

/// Streaming cursor over a DOM subtree's descendant elements with a given
/// tag. The underlying [`Descendants`] walk is stackless (it climbs
/// sibling/parent links), so the whole traversal allocates nothing.
pub struct DomDescendantsNamed<'a> {
    doc: &'a Document,
    iter: Descendants<'a>,
    sym: Sym,
}

impl Iterator for DomDescendantsNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        self.iter
            .by_ref()
            .find(|&c| self.doc.tag(c) == Some(self.sym))
            .map(|c| Node(c.0))
    }
}

/// Streaming cursor over a DOM element's attributes.
pub struct DomAttrs<'a> {
    doc: &'a Document,
    iter: std::slice::Iter<'a, (Sym, String)>,
}

impl<'a> Iterator for DomAttrs<'a> {
    type Item = (&'a str, &'a str);

    #[inline]
    fn next(&mut self) -> Option<(&'a str, &'a str)> {
        self.iter
            .next()
            .map(|(sym, v)| (self.doc.interner().resolve(*sym), v.as_str()))
    }
}

/// The naive DOM store.
pub struct NaiveStore {
    doc: Document,
    indexes: IndexManager,
}

impl NaiveStore {
    /// Bulkload: parse and keep the DOM; nothing else is built eagerly —
    /// the shared [`IndexManager`] structures appear lazily on first use.
    pub fn load(xml: &str) -> Result<Self, xmark_xml::Error> {
        Ok(NaiveStore {
            doc: xmark_xml::parse_document(xml)?,
            indexes: IndexManager::new(),
        })
    }

    /// Access to the underlying document (used by tests).
    pub fn document(&self) -> &Document {
        &self.doc
    }
}

impl XmlStore for NaiveStore {
    fn system(&self) -> SystemId {
        SystemId::G
    }

    fn root(&self) -> Node {
        Node(self.doc.root_element().0)
    }

    fn node_count(&self) -> usize {
        self.doc.node_count()
    }

    fn size_bytes(&self) -> usize {
        self.doc.heap_size_bytes() + self.indexes.size_bytes()
    }

    fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    fn planner_caps(&self) -> PlannerCaps {
        PlannerCaps {
            // The DOM walker has no native secondary structures at all —
            // the shared store-layer indexes are pure win. The planner
            // still refuses ID probes (`id_index: false`), faithful to the
            // paper's System G, even though `lookup_id` now answers.
            element_index: true,
            value_index: true,
            child_values: true,
            ..PlannerCaps::default()
        }
    }

    fn tag_of(&self, n: Node) -> Option<&str> {
        let id = xmark_xml::NodeId(n.0);
        self.doc.tag(id).map(|sym| self.doc.interner().resolve(sym))
    }

    fn parent(&self, n: Node) -> Option<Node> {
        self.doc.parent(xmark_xml::NodeId(n.0)).map(|p| Node(p.0))
    }

    fn text(&self, n: Node) -> Option<&str> {
        self.doc.text(xmark_xml::NodeId(n.0))
    }

    fn attribute(&self, n: Node, name: &str) -> Option<String> {
        self.doc
            .attribute(xmark_xml::NodeId(n.0), name)
            .map(str::to_string)
    }

    fn children_iter(&self, n: Node) -> ChildIter<'_> {
        ChildIter::Dom(DomChildren {
            iter: self.doc.children(xmark_xml::NodeId(n.0)),
        })
    }

    fn children_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> ChildrenNamed<'a> {
        match self.doc.interner().get(tag) {
            None => ChildrenNamed::Empty,
            Some(sym) => ChildrenNamed::Dom(DomChildrenNamed {
                doc: &self.doc,
                iter: self.doc.children(xmark_xml::NodeId(n.0)),
                sym,
            }),
        }
    }

    fn descendants_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> DescendantsNamed<'a> {
        match self.doc.interner().get(tag) {
            None => DescendantsNamed::Empty,
            Some(sym) => DescendantsNamed::Dom(DomDescendantsNamed {
                doc: &self.doc,
                iter: self.doc.descendants(xmark_xml::NodeId(n.0)),
                sym,
            }),
        }
    }

    fn attributes_iter(&self, n: Node) -> AttrIter<'_> {
        AttrIter::Dom(DomAttrs {
            doc: &self.doc,
            iter: self.doc.attributes(xmark_xml::NodeId(n.0)).iter(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<site><people><person id="person0"><name>Alice</name></person><person id="person1"><name>Bob</name></person></people></site>"#;

    #[test]
    fn navigates_like_the_dom() {
        let store = NaiveStore::load(SAMPLE).unwrap();
        let root = store.root();
        assert_eq!(store.tag_of(root), Some("site"));
        let people = store.children_named(root, "people");
        assert_eq!(people.len(), 1);
        let persons = store.children_named(people[0], "person");
        assert_eq!(persons.len(), 2);
        assert_eq!(
            store.attribute(persons[0], "id").as_deref(),
            Some("person0")
        );
        assert_eq!(store.string_value(persons[1]), "Bob");
    }

    #[test]
    fn shared_index_answers_id_lookups() {
        // System G builds no secondary structures of its own — the
        // *planner* still refuses ID probes (`id_index: false`) — but a
        // direct lookup is answered by the shared store-layer attribute
        // index, built lazily on first call.
        let store = NaiveStore::load(SAMPLE).unwrap();
        assert!(!store.planner_caps().id_index);
        assert_eq!(store.indexes().builds(), 0, "nothing built eagerly");
        let hit = store.lookup_id("person0").unwrap().unwrap();
        assert_eq!(store.tag_of(hit), Some("person"));
        assert_eq!(store.lookup_id("ghost").unwrap(), None);
        assert_eq!(store.indexes().builds(), 1, "one lazy build, then reuse");
    }

    #[test]
    fn descendants_walk_the_tree() {
        let store = NaiveStore::load(SAMPLE).unwrap();
        let names = store.descendants_named(store.root(), "name");
        assert_eq!(names.len(), 2);
        // Document order.
        assert!(names[0] < names[1]);
    }

    #[test]
    fn serializes_subtrees() {
        let store = NaiveStore::load(SAMPLE).unwrap();
        let persons = store.descendants_named(store.root(), "person");
        let mut out = String::new();
        store.serialize_node(persons[0], &mut out);
        assert_eq!(out, r#"<person id="person0"><name>Alice</name></person>"#);
    }
}
