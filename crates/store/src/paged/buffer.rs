//! The buffer pool: a bounded set of in-memory page frames with
//! pin/unpin discipline, LRU replacement, and write-back through the
//! WAL's log-before-data rule.
//!
//! BusTub/Sciore-shaped: callers [`BufferPool::pin`] a page and receive
//! a [`PageGuard`] whose `Drop` unpins it; a pinned frame is never a
//! replacement victim, so the bytes a cursor is reading cannot be
//! evicted underneath it (pin-count safety is pinned by tests here).
//! Replacement is LRU over unpinned frames (last-use ticks, updated on
//! every pin). Evicting a dirty frame first flushes the WAL up to the
//! page's LSN, seals the page checksum, and writes it back — the
//! flush-before-write discipline the update path will rely on.
//!
//! Every pool keeps hit/miss/eviction/read/write counters
//! ([`PoolStats`]) — the numbers the `fig4_embedded` report prints for
//! backend H's cold-vs-warm comparison.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use super::file::FileManager;
use super::page::{Page, PageId, PAGE_SIZE};
use super::wal::LogManager;

use crate::sync::{lock, read, write};

/// A snapshot of the pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pins served from a resident frame.
    pub hits: u64,
    /// Pins that had to read the page from disk.
    pub misses: u64,
    /// Frames reassigned to a different page.
    pub evictions: u64,
    /// Pages read from the file.
    pub pages_read: u64,
    /// Pages written to the file.
    pub pages_written: u64,
    /// Dirty evictions (write-backs forced by replacement, a subset of
    /// `pages_written`).
    pub dirty_writebacks: u64,
}

impl PoolStats {
    /// Hit rate over all pins, in `[0, 1]`; `1.0` for an untouched pool.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise sum (`self + other`) — the sharded union view
    /// aggregates its per-shard pools into one logical report.
    pub fn merged(&self, other: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            pages_read: self.pages_read + other.pages_read,
            pages_written: self.pages_written + other.pages_written,
            dirty_writebacks: self.dirty_writebacks + other.dirty_writebacks,
        }
    }

    /// Counter-wise difference (`self - earlier`) for per-phase deltas.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
            dirty_writebacks: self.dirty_writebacks - earlier.dirty_writebacks,
        }
    }
}

/// Victim-selection policy for the frame pool.
///
/// LRU keeps an exact recency order (one tick per pin/unpin) and evicts
/// the coldest unpinned frame; CLOCK approximates it with one reference
/// bit and a sweeping hand — O(1) amortized, no full scan per eviction,
/// the classic trade under write-heavy mixes where the LRU scan and its
/// tick bookkeeping sit inside the pool lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReplacerKind {
    /// Exact least-recently-used scan (the default).
    #[default]
    Lru,
    /// Second-chance clock sweep over reference bits.
    Clock,
}

struct Frame {
    page_id: PageId,
    data: Arc<RwLock<Page>>,
    pin_count: u32,
    dirty: bool,
    last_use: u64,
    /// CLOCK reference bit: set on every pin, cleared by a passing hand.
    referenced: bool,
}

struct Inner {
    frames: Vec<Frame>,
    /// page id → frame index.
    table: HashMap<PageId, usize>,
    tick: u64,
    /// CLOCK hand: next frame the sweep inspects.
    hand: usize,
}

/// The bounded frame pool over one page file (plus its WAL).
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<Inner>,
    file: Mutex<FileManager>,
    wal: Option<Arc<LogManager>>,
    replacer: ReplacerKind,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    dirty_writebacks: AtomicU64,
}

impl BufferPool {
    /// A pool of at most `capacity` frames over `file`, logging page
    /// writes against `wal` (when present).
    pub fn new(file: FileManager, wal: Option<Arc<LogManager>>, capacity: usize) -> BufferPool {
        BufferPool::with_replacer(file, wal, capacity, ReplacerKind::Lru)
    }

    /// A pool with an explicit victim-selection policy (see
    /// [`ReplacerKind`]).
    pub fn with_replacer(
        file: FileManager,
        wal: Option<Arc<LogManager>>,
        capacity: usize,
        replacer: ReplacerKind,
    ) -> BufferPool {
        assert!(capacity >= 2, "a useful pool needs at least two frames");
        BufferPool {
            capacity,
            inner: Mutex::new(Inner {
                frames: Vec::new(),
                table: HashMap::new(),
                tick: 0,
                hand: 0,
            }),
            file: Mutex::new(file),
            wal,
            replacer,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pages_read: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
            dirty_writebacks: AtomicU64::new(0),
        }
    }

    /// Frame budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident bytes of the frames currently held (≤ capacity × page
    /// size) plus bookkeeping.
    pub fn resident_bytes(&self) -> usize {
        let inner = lock(&self.inner);
        inner.frames.len() * (PAGE_SIZE + std::mem::size_of::<Frame>() + 48)
    }

    /// The counters right now.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pages_read: self.pages_read.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            dirty_writebacks: self.dirty_writebacks.load(Ordering::Relaxed),
        }
    }

    /// Pages currently allocated in the underlying file.
    pub fn num_pages(&self) -> u32 {
        lock(&self.file).num_pages()
    }

    /// The file's on-disk bytes (all allocated pages).
    pub fn disk_bytes(&self) -> usize {
        lock(&self.file).size_bytes()
    }

    /// Pin page `id`, reading it from disk on a miss (checksum
    /// verified). The returned guard unpins on drop.
    ///
    /// # Errors
    /// I/O failure, checksum mismatch, or pool exhaustion (every frame
    /// pinned).
    pub fn pin(&self, id: PageId) -> io::Result<PageGuard<'_>> {
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&idx) = inner.table.get(&id) {
            let frame = &mut inner.frames[idx];
            frame.pin_count += 1;
            frame.last_use = tick;
            frame.referenced = true;
            self.hits.fetch_add(1, Ordering::Relaxed);
            let data = Arc::clone(&frame.data);
            return Ok(PageGuard {
                pool: self,
                page_id: id,
                data,
                dirty: false,
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = self.take_frame(&mut inner)?;

        let mut page = Page::new();
        {
            let mut file = lock(&self.file);
            file.read_page(id, &mut page)?;
        }
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        if !page.verify() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checksum mismatch reading page {id}"),
            ));
        }
        self.install(&mut inner, idx, id, page, tick)
    }

    /// Allocate a brand-new page in the file and pin its (empty, dirty)
    /// frame — the bulkload path. Returns the new page id with the
    /// guard.
    pub fn pin_new(&self) -> io::Result<(PageId, PageGuard<'_>)> {
        let id = {
            let mut file = lock(&self.file);
            file.allocate()
        };
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = self.take_frame(&mut inner)?;
        let mut guard = self.install(&mut inner, idx, id, Page::new(), tick)?;
        guard.dirty = true;
        Ok((id, guard))
    }

    /// Pick a frame: grow the pool to capacity, else evict per the
    /// configured replacer (write-back if dirty). Caller holds the inner
    /// lock.
    fn take_frame(&self, inner: &mut Inner) -> io::Result<usize> {
        if inner.frames.len() < self.capacity {
            inner.frames.push(Frame {
                page_id: u32::MAX,
                data: Arc::new(RwLock::new(Page::new())),
                pin_count: 0,
                dirty: false,
                last_use: 0,
                referenced: false,
            });
            return Ok(inner.frames.len() - 1);
        }
        let exhausted = || {
            io::Error::other(format!(
                "buffer pool exhausted: all {} frames pinned",
                self.capacity
            ))
        };
        let victim = match self.replacer {
            ReplacerKind::Lru => inner
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pin_count == 0)
                .min_by_key(|(_, f)| f.last_use)
                .map(|(i, _)| i)
                .ok_or_else(exhausted)?,
            ReplacerKind::Clock => {
                // Second-chance sweep: a set reference bit buys the frame
                // one revolution. Two full revolutions (first clears every
                // bit, second must find a victim) bound the scan; only
                // pinned-everywhere pools fail.
                let n = inner.frames.len();
                let mut found = None;
                for _ in 0..2 * n {
                    let idx = inner.hand;
                    inner.hand = (inner.hand + 1) % n;
                    let frame = &mut inner.frames[idx];
                    if frame.pin_count > 0 {
                        continue;
                    }
                    if frame.referenced {
                        frame.referenced = false;
                        continue;
                    }
                    found = Some(idx);
                    break;
                }
                found.ok_or_else(exhausted)?
            }
        };
        let (old_id, dirty) = {
            let f = &inner.frames[victim];
            (f.page_id, f.dirty)
        };
        if dirty {
            let data = Arc::clone(&inner.frames[victim].data);
            self.write_back(old_id, &data)?;
            self.dirty_writebacks.fetch_add(1, Ordering::Relaxed);
            inner.frames[victim].dirty = false;
        }
        inner.table.remove(&old_id);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(victim)
    }

    fn install<'a>(
        &'a self,
        inner: &mut Inner,
        idx: usize,
        id: PageId,
        page: Page,
        tick: u64,
    ) -> io::Result<PageGuard<'a>> {
        let frame = &mut inner.frames[idx];
        frame.page_id = id;
        frame.data = Arc::new(RwLock::new(page));
        frame.pin_count = 1;
        frame.dirty = false;
        frame.last_use = tick;
        frame.referenced = true;
        let data = Arc::clone(&frame.data);
        inner.table.insert(id, idx);
        Ok(PageGuard {
            pool: self,
            page_id: id,
            data,
            dirty: false,
        })
    }

    /// WAL-disciplined page write: flush the log up to the page's LSN
    /// *before* the data write, then seal the checksum and write.
    fn write_back(&self, id: PageId, data: &Arc<RwLock<Page>>) -> io::Result<()> {
        let mut page = write(data);
        if let Some(wal) = &self.wal {
            wal.flush(page.lsn())?;
        }
        page.seal();
        let mut file = lock(&self.file);
        file.write_page(id, &page)?;
        self.pages_written.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn unpin(&self, id: PageId, dirtied: bool) {
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        // Runs from PageGuard::drop: a missing entry is a pool bug, but
        // panicking in Drop would abort mid-unwind, so tolerate it.
        let Some(&idx) = inner.table.get(&id) else {
            debug_assert!(false, "unpin of unresident page {id}");
            return;
        };
        let frame = &mut inner.frames[idx];
        assert!(frame.pin_count > 0, "unpin of unpinned page {id}");
        frame.pin_count -= 1;
        frame.dirty |= dirtied;
        frame.last_use = tick;
    }

    /// Write every dirty frame back (WAL first) and sync the file — the
    /// bulkload commit point.
    ///
    /// # Errors
    /// I/O failure; also if a dirty frame is still pinned.
    pub fn flush_all(&self) -> io::Result<()> {
        let inner = lock(&self.inner);
        for frame in &inner.frames {
            if !frame.dirty {
                continue;
            }
            if frame.pin_count > 0 {
                return Err(io::Error::other(format!(
                    "flush_all with page {} still pinned",
                    frame.page_id
                )));
            }
            self.write_back(frame.page_id, &frame.data)?;
        }
        drop(inner);
        // Second pass to clear dirty bits (write_back borrowed data).
        let mut inner = lock(&self.inner);
        for frame in &mut inner.frames {
            frame.dirty = false;
        }
        drop(inner);
        lock(&self.file).sync()
    }
}

/// A pinned page. Reading goes through [`PageGuard::read`]; writing
/// through [`PageGuard::write`], which marks the frame dirty at unpin.
/// Dropping the guard unpins the frame.
pub struct PageGuard<'a> {
    pool: &'a BufferPool,
    page_id: PageId,
    data: Arc<RwLock<Page>>,
    dirty: bool,
}

impl std::fmt::Debug for PageGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("page_id", &self.page_id)
            .field("dirty", &self.dirty)
            .finish_non_exhaustive()
    }
}

impl PageGuard<'_> {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.page_id
    }

    /// Shared read access to the page image.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        read(&self.data)
    }

    /// Exclusive write access; the frame is marked dirty when the guard
    /// unpins.
    pub fn write(&mut self) -> RwLockWriteGuard<'_, Page> {
        self.dirty = true;
        write(&self.data)
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.page_id, self.dirty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paged::wal::{LogManager, LogRecord};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        crate::paged::scratch_dir().join(format!("pool-{}-{name}.pages", std::process::id()))
    }

    /// A pool over a fresh file pre-seeded with `pages` sealed pages,
    /// each holding one record naming its page number.
    fn seeded_pool(name: &str, pages: u32, capacity: usize) -> (BufferPool, PathBuf) {
        let path = tmp(name);
        let mut fm = FileManager::create(&path).unwrap();
        for id in 0..pages {
            let _ = fm.allocate();
            let mut p = Page::new();
            p.insert(format!("page-{id}").as_bytes()).unwrap();
            p.seal();
            fm.write_page(id, &p).unwrap();
        }
        (BufferPool::new(fm, None, capacity), path)
    }

    /// Like [`seeded_pool`] but with an explicit replacement policy.
    fn seeded_pool_with(
        name: &str,
        pages: u32,
        capacity: usize,
        replacer: ReplacerKind,
    ) -> (BufferPool, PathBuf) {
        let path = tmp(name);
        let mut fm = FileManager::create(&path).unwrap();
        for id in 0..pages {
            let _ = fm.allocate();
            let mut p = Page::new();
            p.insert(format!("page-{id}").as_bytes()).unwrap();
            p.seal();
            fm.write_page(id, &p).unwrap();
        }
        (
            BufferPool::with_replacer(fm, None, capacity, replacer),
            path,
        )
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (pool, path) = seeded_pool("counters", 3, 2);
        {
            let g = pool.pin(0).unwrap();
            assert_eq!(g.read().record(0), b"page-0");
        }
        let _ = pool.pin(0).unwrap();
        let s = pool.stats();
        assert_eq!((s.misses, s.hits, s.pages_read), (1, 1, 1));
        assert!((pool.stats().hit_rate() - 0.5).abs() < 1e-9);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn eviction_follows_lru_order() {
        let (pool, path) = seeded_pool("lru", 4, 2);
        let _ = pool.pin(0).unwrap(); // frames: {0}
        let _ = pool.pin(1).unwrap(); // frames: {0, 1}
        let _ = pool.pin(0).unwrap(); // 0 is now more recent than 1
        let _ = pool.pin(2).unwrap(); // evicts 1 (LRU), frames: {0, 2}
        assert_eq!(pool.stats().evictions, 1);
        let before = pool.stats().misses;
        let _ = pool.pin(0).unwrap(); // still resident — a hit
        assert_eq!(pool.stats().misses, before);
        let _ = pool.pin(1).unwrap(); // evicted earlier — a miss
        assert_eq!(pool.stats().misses, before + 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn clock_sweep_diverges_from_lru_on_rereference() {
        // Same pin sequence as `eviction_follows_lru_order`, CLOCK policy:
        // re-pinning page 0 only re-sets its reference bit, so the sweep
        // clears both bits on its first revolution and evicts the frame
        // the hand reaches first (page 0) — where exact LRU evicts page 1.
        let (pool, path) = seeded_pool_with("clock", 4, 2, ReplacerKind::Clock);
        let _ = pool.pin(0).unwrap();
        let _ = pool.pin(1).unwrap();
        let _ = pool.pin(0).unwrap(); // hit: sets (already-set) ref bit
        let _ = pool.pin(2).unwrap(); // sweep clears both bits, evicts 0
        assert_eq!(pool.stats().evictions, 1);
        let misses_before = pool.stats().misses;
        let _ = pool.pin(1).unwrap(); // survived the sweep — a hit
        assert_eq!(pool.stats().misses, misses_before);
        let _ = pool.pin(0).unwrap(); // was evicted — a miss
        assert_eq!(pool.stats().misses, misses_before + 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn clock_skips_pinned_frames_and_reports_exhaustion() {
        let (pool, path) = seeded_pool_with("clockpin", 4, 2, ReplacerKind::Clock);
        let held = pool.pin(0).unwrap();
        let _ = pool.pin(1).unwrap();
        let _ = pool.pin(2).unwrap(); // must evict 1, never pinned 0
        assert_eq!(held.read().record(0), b"page-0");
        assert_eq!(pool.stats().evictions, 1);
        let also_held = pool.pin(2).unwrap();
        let err = pool.pin(3).unwrap_err();
        assert!(err.to_string().contains("exhausted"), "{err}");
        drop(also_held);
        assert!(pool.pin(3).is_ok(), "freed frame is reusable");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn pinned_frames_are_never_victims() {
        let (pool, path) = seeded_pool("pinsafe", 4, 2);
        let held = pool.pin(0).unwrap(); // keep page 0 pinned
        let _ = pool.pin(1).unwrap();
        let _ = pool.pin(2).unwrap(); // must evict 1, not pinned 0
        assert_eq!(held.read().record(0), b"page-0");
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        // Page 0 is still resident: pinning it again is a hit.
        let hits_before = pool.stats().hits;
        let _ = pool.pin(0).unwrap();
        assert_eq!(pool.stats().hits, hits_before + 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn exhausted_pool_reports_rather_than_evicting_pinned_pages() {
        let (pool, path) = seeded_pool("exhaust", 4, 2);
        let _g0 = pool.pin(0).unwrap();
        let _g1 = pool.pin(1).unwrap();
        let err = pool.pin(2).unwrap_err();
        assert!(err.to_string().contains("exhausted"), "{err}");
        drop(_g0);
        assert!(pool.pin(2).is_ok(), "freed frame is reusable");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn dirty_pages_write_back_on_eviction_and_survive() {
        let (pool, path) = seeded_pool("dirty", 4, 2);
        {
            let mut g = pool.pin(0).unwrap();
            g.write().insert(b"mutated").unwrap();
        }
        // Force page 0 out.
        let _ = pool.pin(1).unwrap();
        let _ = pool.pin(2).unwrap();
        let s = pool.stats();
        assert_eq!(s.dirty_writebacks, 1);
        assert_eq!(s.pages_written, 1);
        // Re-reading page 0 from disk sees the mutation, checksummed.
        let g = pool.pin(0).unwrap();
        assert_eq!(g.read().record(1), b"mutated");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn eviction_flushes_the_wal_before_the_data_write() {
        let path = tmp("waldisc");
        let wal_path = path.with_extension("wal");
        let fm = FileManager::create(&path).unwrap();
        let wal = Arc::new(LogManager::create(&wal_path).unwrap());
        let pool = BufferPool::new(fm, Some(Arc::clone(&wal)), 2);

        let (id, mut guard) = pool.pin_new().unwrap();
        let lsn = wal.append(&LogRecord::FormatPage {
            page: id,
            kind: crate::paged::page::PageKind::Node,
        });
        {
            let mut p = guard.write();
            p.set_lsn(lsn);
            p.insert(b"logged").unwrap();
        }
        drop(guard);
        assert_eq!(wal.flushed_lsn(), 0, "nothing flushed yet");

        // Evict the dirty page: the pool must flush the log first.
        let (_, _a) = pool.pin_new().unwrap();
        let (_, _b) = pool.pin_new().unwrap();
        assert!(
            wal.flushed_lsn() >= lsn,
            "log-before-data violated: flushed {} < page lsn {lsn}",
            wal.flushed_lsn()
        );
        assert_eq!(pool.stats().dirty_writebacks, 1);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&wal_path).unwrap();
    }

    #[test]
    fn flush_all_persists_every_dirty_frame() {
        let path = tmp("flushall");
        let fm = FileManager::create(&path).unwrap();
        let pool = BufferPool::new(fm, None, 4);
        let mut ids = Vec::new();
        for i in 0..3u32 {
            let (id, mut g) = pool.pin_new().unwrap();
            g.write().insert(format!("bulk-{i}").as_bytes()).unwrap();
            ids.push(id);
        }
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().pages_written, 3);
        // A cold pool over the same file sees everything.
        let cold = BufferPool::new(FileManager::open(&path).unwrap(), None, 2);
        for (i, id) in ids.iter().enumerate() {
            let g = cold.pin(*id).unwrap();
            assert_eq!(g.read().record(0), format!("bulk-{i}").as_bytes());
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn checksum_corruption_is_detected_at_pin_time() {
        let (pool, path) = seeded_pool("corrupt", 2, 2);
        drop(pool);
        // Flip one payload byte of page 1 on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[PAGE_SIZE + 100] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let pool = BufferPool::new(FileManager::open(&path).unwrap(), None, 2);
        assert!(pool.pin(0).is_ok(), "untouched page still reads");
        let err = pool.pin(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(path).unwrap();
    }
}
