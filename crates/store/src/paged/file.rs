//! The file manager: block-granular access to one page file.
//!
//! Sciore-style: the file manager knows nothing about page contents —
//! it reads and writes [`PAGE_SIZE`]-byte blocks at page-number offsets
//! and tracks how many pages the file holds. Allocation is append-only
//! (`allocate` hands out the next page number); pages may be *written*
//! out of order (buffer-pool eviction order is LRU, not id order), so a
//! write beyond the current end of file simply extends it.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::page::{Page, PageId, PAGE_SIZE};

/// Block read/write access to one page file.
#[derive(Debug)]
pub struct FileManager {
    file: File,
    path: PathBuf,
    pages: u32,
}

impl FileManager {
    /// Create (or truncate) the page file at `path`.
    pub fn create(path: &Path) -> io::Result<FileManager> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileManager {
            file,
            path: path.to_path_buf(),
            pages: 0,
        })
    }

    /// Open an existing page file.
    ///
    /// # Errors
    /// Fails if the file is missing or its length is not a whole number
    /// of pages (a torn or foreign file).
    pub fn open(path: &Path) -> io::Result<FileManager> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} is not a whole number of {PAGE_SIZE}-byte pages ({len} bytes)",
                    path.display()
                ),
            ));
        }
        Ok(FileManager {
            file,
            path: path.to_path_buf(),
            pages: (len / PAGE_SIZE as u64) as u32,
        })
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages (some may not have reached disk yet —
    /// the buffer pool writes them at eviction or flush time).
    pub fn num_pages(&self) -> u32 {
        self.pages
    }

    /// Total on-disk bytes once all allocated pages are flushed.
    pub fn size_bytes(&self) -> usize {
        self.pages as usize * PAGE_SIZE
    }

    /// Hand out the next page number (append-only allocation).
    pub fn allocate(&mut self) -> PageId {
        let id = self.pages;
        self.pages += 1;
        id
    }

    /// Read page `id` into `page` (no checksum verification here — the
    /// buffer pool verifies after every read so corruption is caught at
    /// one choke point).
    pub fn read_page(&mut self, id: PageId, page: &mut Page) -> io::Result<()> {
        self.file
            .seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))?;
        self.file.read_exact(page.bytes_mut().as_mut_slice())
    }

    /// Write the (sealed) image of `page` as page `id`.
    pub fn write_page(&mut self, id: PageId, page: &Page) -> io::Result<()> {
        self.file
            .seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))?;
        self.file.write_all(page.bytes().as_slice())?;
        self.pages = self.pages.max(id + 1);
        Ok(())
    }

    /// Force everything to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = crate::paged::scratch_dir();
        dir.join(format!("filemgr-{}-{name}.pages", std::process::id()))
    }

    #[test]
    fn write_read_round_trip() {
        let path = tmp("roundtrip");
        let mut fm = FileManager::create(&path).unwrap();
        let id0 = fm.allocate();
        let id1 = fm.allocate();
        assert_eq!((id0, id1), (0, 1));

        let mut p = Page::new();
        p.insert(b"page one").unwrap();
        p.seal();
        // Out-of-order write: page 1 first, extending past EOF.
        fm.write_page(id1, &p).unwrap();
        let mut p0 = Page::new();
        p0.insert(b"page zero").unwrap();
        p0.seal();
        fm.write_page(id0, &p0).unwrap();
        fm.sync().unwrap();

        let mut back = Page::new();
        fm.read_page(id1, &mut back).unwrap();
        assert!(back.verify());
        assert_eq!(back.record(0), b"page one");

        drop(fm);
        let mut reopened = FileManager::open(&path).unwrap();
        assert_eq!(reopened.num_pages(), 2);
        reopened.read_page(0, &mut back).unwrap();
        assert_eq!(back.record(0), b"page zero");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_torn_files() {
        let path = tmp("torn");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 100]).unwrap();
        let err = FileManager::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
