//! The page-file layout: record codecs, the header page, and the
//! catalog blob.
//!
//! A store file is laid out as contiguous extents of same-kind pages:
//!
//! ```text
//! page 0            header (magic, version, extent table, checksums)
//! node_start ..     fixed 12-byte interval-encoding node records,
//!                    [`NODES_PER_PAGE`] per page → node id addresses a
//!                    (page, slot) pair by pure arithmetic
//! text_start ..     text chunks: [node_id u32][bytes], long values
//!                    split across consecutive records; the catalog's
//!                    sparse first-id-per-page index locates a node's
//!                    first chunk in O(log pages)
//! attr_start ..     attribute records: [owner u32][name_code u16]
//!                    [value bytes], consecutive per owner, with a
//!                    sparse first-owner-per-page index
//! meta_start ..     the encoded [`Catalog`] blob (tag/attr name
//!                    tables, per-tag counts, sparse indexes), chunked
//!                    across meta pages
//! ```
//!
//! The header page is written *last* during bulkload, so a torn load
//! leaves an unreadable header (belt) on top of the WAL's missing
//! `EndBulkLoad` record (suspenders).

use std::io;

use super::page::{Page, MAX_RECORD, PAGE_HEADER, PAGE_SIZE, SLOT_SIZE};

/// File magic: "XPG1" little-endian.
pub const MAGIC: u32 = 0x3147_5058;

/// Format version.
pub const VERSION: u32 = 1;

/// Bytes of one encoded node record.
pub const NODE_RECORD: usize = 12;

/// Fixed node records per node page — fixed width makes node-id →
/// (page, slot) pure arithmetic.
pub const NODES_PER_PAGE: usize = (PAGE_SIZE - PAGE_HEADER) / (NODE_RECORD + SLOT_SIZE);

/// Largest text chunk payload per record (record = 4-byte node id +
/// payload).
pub const TEXT_CHUNK: usize = MAX_RECORD - 4;

/// One decoded node-table record (the interval encoding of one node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRec {
    /// Parent node id (`u32::MAX` for the root).
    pub parent: u32,
    /// Last preorder id in this node's subtree (interval end).
    pub end: u32,
    /// Tag code (`u16::MAX` marks a text node).
    pub tag_code: u16,
    /// Depth below the root.
    pub level: u16,
}

impl NodeRec {
    /// Encode to the fixed 12-byte on-page form.
    pub fn encode(&self) -> [u8; NODE_RECORD] {
        let mut out = [0u8; NODE_RECORD];
        out[0..4].copy_from_slice(&self.parent.to_le_bytes());
        out[4..8].copy_from_slice(&self.end.to_le_bytes());
        out[8..10].copy_from_slice(&self.tag_code.to_le_bytes());
        out[10..12].copy_from_slice(&self.level.to_le_bytes());
        out
    }

    /// Decode from an on-page record.
    ///
    /// # Panics
    /// Panics if `rec` is not exactly [`NODE_RECORD`] bytes — node pages
    /// only ever hold fixed-width records.
    pub fn decode(rec: &[u8]) -> NodeRec {
        assert_eq!(rec.len(), NODE_RECORD, "malformed node record");
        NodeRec {
            parent: le_u32(rec, 0),
            end: le_u32(rec, 4),
            tag_code: le_u16(rec, 8),
            level: le_u16(rec, 10),
        }
    }
}

/// Read a little-endian `u32` at `off` — the record-decode primitive the
/// whole paged layer shares instead of per-site `try_into().expect(…)`.
///
/// # Panics
/// Panics if `rec` has fewer than `off + 4` bytes; record widths are
/// fixed by the page layout, so a short slice is a layout bug.
pub(crate) fn le_u32(rec: &[u8], off: usize) -> u32 {
    let mut bytes = [0u8; 4];
    bytes.copy_from_slice(&rec[off..off + 4]);
    u32::from_le_bytes(bytes)
}

/// Read a little-endian `u16` at `off` (see [`le_u32`]).
pub(crate) fn le_u16(rec: &[u8], off: usize) -> u16 {
    let mut bytes = [0u8; 2];
    bytes.copy_from_slice(&rec[off..off + 2]);
    u16::from_le_bytes(bytes)
}

/// The header page (page 0): magic, version, and the extent table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Header {
    /// Total nodes in the document.
    pub node_count: u32,
    /// Root node id.
    pub root: u32,
    /// First node page.
    pub node_start: u32,
    /// Node extent length in pages.
    pub node_pages: u32,
    /// First text page.
    pub text_start: u32,
    /// Text extent length in pages.
    pub text_pages: u32,
    /// First attribute page.
    pub attr_start: u32,
    /// Attribute extent length in pages.
    pub attr_pages: u32,
    /// First catalog page.
    pub meta_start: u32,
    /// Catalog extent length in pages.
    pub meta_pages: u32,
    /// Encoded catalog length in bytes.
    pub meta_len: u32,
}

impl Header {
    const FIELDS: usize = 11;
    /// Fixed fields start after the 16-byte page header.
    const BASE: usize = PAGE_HEADER;

    /// Serialize into the header page image (magic and version first).
    pub fn write_to(&self, page: &mut Page) {
        page.write_u32(Self::BASE, MAGIC);
        page.write_u32(Self::BASE + 4, VERSION);
        page.write_u32(Self::BASE + 8, PAGE_SIZE as u32);
        let fields = [
            self.node_count,
            self.root,
            self.node_start,
            self.node_pages,
            self.text_start,
            self.text_pages,
            self.attr_start,
            self.attr_pages,
            self.meta_start,
            self.meta_pages,
            self.meta_len,
        ];
        for (i, f) in fields.iter().enumerate() {
            page.write_u32(Self::BASE + 12 + i * 4, *f);
        }
    }

    /// Parse the header page, validating magic / version / page size.
    ///
    /// # Errors
    /// `InvalidData` when the page is not a version-1 store header —
    /// a torn bulkload leaves page 0 zeroed and lands here.
    pub fn read_from(page: &Page) -> io::Result<Header> {
        let bad = |what: &str, got: u32, want: u32| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("not a page-store file: {what} {got:#x} != {want:#x}"),
            )
        };
        let magic = page.read_u32(Self::BASE);
        if magic != MAGIC {
            return Err(bad("magic", magic, MAGIC));
        }
        let version = page.read_u32(Self::BASE + 4);
        if version != VERSION {
            return Err(bad("version", version, VERSION));
        }
        let psize = page.read_u32(Self::BASE + 8);
        if psize != PAGE_SIZE as u32 {
            return Err(bad("page size", psize, PAGE_SIZE as u32));
        }
        let mut fields = [0u32; Self::FIELDS];
        for (i, f) in fields.iter_mut().enumerate() {
            *f = page.read_u32(Self::BASE + 12 + i * 4);
        }
        Ok(Header {
            node_count: fields[0],
            root: fields[1],
            node_start: fields[2],
            node_pages: fields[3],
            text_start: fields[4],
            text_pages: fields[5],
            attr_start: fields[6],
            attr_pages: fields[7],
            meta_start: fields[8],
            meta_pages: fields[9],
            meta_len: fields[10],
        })
    }
}

/// The catalog: everything the store keeps resident after a cold open —
/// name tables, per-tag counts (exact statistics for the planner), and
/// the sparse page indexes for the variable-width tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    /// Element tag names, indexed by tag code.
    pub tag_names: Vec<String>,
    /// Attribute names, indexed by name code.
    pub attr_names: Vec<String>,
    /// Node count per tag code (text nodes are counted under the
    /// pseudo-code at the end).
    pub tag_counts: Vec<u32>,
    /// First node id with a chunk on each text page (sparse index).
    pub text_first_id: Vec<u32>,
    /// First owner id on each attribute page (sparse index).
    pub attr_first_owner: Vec<u32>,
}

impl Catalog {
    /// Encode to the meta blob (length-prefixed, little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str_table(&mut out, &self.tag_names);
        put_str_table(&mut out, &self.attr_names);
        put_u32_table(&mut out, &self.tag_counts);
        put_u32_table(&mut out, &self.text_first_id);
        put_u32_table(&mut out, &self.attr_first_owner);
        out
    }

    /// Decode a meta blob.
    ///
    /// # Errors
    /// `InvalidData` on truncation or non-UTF-8 names.
    pub fn decode(buf: &[u8]) -> io::Result<Catalog> {
        let mut cur = Cursor { buf, off: 0 };
        let catalog = Catalog {
            tag_names: take_str_table(&mut cur)?,
            attr_names: take_str_table(&mut cur)?,
            tag_counts: take_u32_table(&mut cur)?,
            text_first_id: take_u32_table(&mut cur)?,
            attr_first_owner: take_u32_table(&mut cur)?,
        };
        if cur.off != buf.len() {
            return Err(corrupt(format!(
                "catalog has {} trailing bytes",
                buf.len() - cur.off
            )));
        }
        Ok(catalog)
    }

    /// Approximate heap bytes this catalog keeps resident.
    pub fn resident_bytes(&self) -> usize {
        let strings = |v: &[String]| -> usize {
            v.iter()
                .map(|s| s.len() + std::mem::size_of::<String>())
                .sum()
        };
        strings(&self.tag_names)
            + strings(&self.attr_names)
            + 4 * (self.tag_counts.len() + self.text_first_id.len() + self.attr_first_owner.len())
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        let chunk = self
            .buf
            .get(self.off..self.off + n)
            .ok_or_else(|| corrupt(format!("catalog truncated at byte {}", self.off)))?;
        self.off += n;
        Ok(chunk)
    }

    fn take_u32(&mut self) -> io::Result<u32> {
        Ok(le_u32(self.take(4)?, 0))
    }
}

fn corrupt(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_u32_table(out: &mut Vec<u8>, vals: &[u32]) {
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn take_u32_table(cur: &mut Cursor<'_>) -> io::Result<Vec<u32>> {
    let n = cur.take_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(cur.take_u32()?);
    }
    Ok(out)
}

fn put_str_table(out: &mut Vec<u8>, vals: &[String]) {
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    for s in vals {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
}

fn take_str_table(cur: &mut Cursor<'_>) -> io::Result<Vec<String>> {
    let n = cur.take_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = cur.take_u32()? as usize;
        let bytes = cur.take(len)?;
        out.push(
            std::str::from_utf8(bytes)
                .map_err(|_| corrupt("catalog name is not UTF-8".into()))?
                .to_owned(),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_record_round_trips() {
        let rec = NodeRec {
            parent: 7,
            end: 123_456,
            tag_code: 42,
            level: 9,
        };
        assert_eq!(NodeRec::decode(&rec.encode()), rec);
        let root = NodeRec {
            parent: u32::MAX,
            end: 0,
            tag_code: u16::MAX,
            level: 0,
        };
        assert_eq!(NodeRec::decode(&root.encode()), root);
    }

    #[test]
    fn nodes_per_page_fills_exactly() {
        let mut p = Page::new();
        let rec = NodeRec {
            parent: 1,
            end: 2,
            tag_code: 3,
            level: 4,
        }
        .encode();
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        assert_eq!(n, NODES_PER_PAGE);
    }

    #[test]
    fn header_round_trips_and_rejects_garbage() {
        let hdr = Header {
            node_count: 100,
            root: 0,
            node_start: 1,
            node_pages: 2,
            text_start: 3,
            text_pages: 4,
            attr_start: 7,
            attr_pages: 1,
            meta_start: 8,
            meta_pages: 1,
            meta_len: 321,
        };
        let mut page = Page::new();
        hdr.write_to(&mut page);
        assert_eq!(Header::read_from(&page).unwrap(), hdr);
        // A zeroed page (torn bulkload) is not a header.
        let blank = Page::new();
        let err = Header::read_from(&blank).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn catalog_round_trips() {
        let cat = Catalog {
            tag_names: vec!["site".into(), "regions".into(), "item".into()],
            attr_names: vec!["id".into(), "category".into()],
            tag_counts: vec![1, 6, 2175, 99],
            text_first_id: vec![0, 400, 913],
            attr_first_owner: vec![2, 500],
        };
        let blob = cat.encode();
        assert_eq!(Catalog::decode(&blob).unwrap(), cat);
        assert!(cat.resident_bytes() > 0);
    }

    #[test]
    fn catalog_rejects_truncation_and_trailing_bytes() {
        let cat = Catalog {
            tag_names: vec!["a".into()],
            ..Catalog::default()
        };
        let blob = cat.encode();
        for cut in [1, blob.len() / 2, blob.len() - 1] {
            assert!(Catalog::decode(&blob[..cut]).is_err(), "cut at {cut}");
        }
        let mut padded = blob.clone();
        padded.push(0);
        assert!(Catalog::decode(&padded).is_err());
    }
}
