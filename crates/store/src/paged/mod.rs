//! Disk-resident paged storage — the engine under backend **H**.
//!
//! Every other backend in this crate keeps the whole document in RAM;
//! this subsystem stores it in a page file and serves queries through a
//! bounded [`BufferPool`], so document size is capped by disk, not
//! memory. The layering is the classic Sciore/BusTub split:
//!
//! ```text
//!  PagedStore (store.rs)   XmlStore impl: axis cursors over pinned
//!      │                   pages, bulkload, cold open
//!  BufferPool (buffer.rs)  pin/unpin frames, LRU replacement,
//!      │                   hit/miss/eviction counters,
//!      │                   flush-log-before-data write-back
//!  FileManager (file.rs)   block read/write of PAGE_SIZE pages
//!  LogManager (wal.rs)     append-only WAL: bulkload bracketing today,
//!                          the durability substrate for updates next
//!  Page (page.rs)          checksummed slotted page
//!  layout.rs               record codecs, header page, catalog blob
//! ```
//!
//! The on-disk format and the torn-load story live in [`layout`]'s
//! module docs. Scratch files (benches, tests, ephemeral stores) land
//! under `target/paged-tmp/` via [`scratch_dir`] so CI trees stay
//! clean.

mod buffer;
mod file;
mod layout;
mod page;
mod store;
mod wal;

pub use buffer::{BufferPool, PageGuard, PoolStats, ReplacerKind};
pub use file::FileManager;
pub use layout::{Catalog, Header, NodeRec, NODES_PER_PAGE};
pub use page::{checksum, Page, PageId, PageKind, PAGE_SIZE};
pub use store::{
    wal_path_for, PagedChildren, PagedChildrenNamed, PagedScanNamed, PagedStore, DEFAULT_POOL_PAGES,
};
pub use wal::{LogManager, LogRecord, Lsn};

use std::path::PathBuf;

/// Directory for scratch page files: `$XMARK_PAGED_DIR` when set, else
/// the nearest `target/` directory above the current directory (so CI
/// and local runs keep temp files inside the build tree), else the
/// system temp dir. The directory is created on first use.
pub fn scratch_dir() -> PathBuf {
    let base = std::env::var_os("XMARK_PAGED_DIR")
        .map(PathBuf::from)
        .or_else(|| {
            let mut dir = std::env::current_dir().ok()?;
            loop {
                let target = dir.join("target");
                if target.is_dir() {
                    return Some(target.join("paged-tmp"));
                }
                if !dir.pop() {
                    return None;
                }
            }
        })
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&base).ok();
    base
}
