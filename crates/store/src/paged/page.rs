//! The fixed-size, checksummed, slotted page — the unit of disk I/O.
//!
//! Every page in a store file is [`PAGE_SIZE`] bytes with a 16-byte
//! header:
//!
//! ```text
//! offset  0..4   checksum   FNV-1a over bytes 4..PAGE_SIZE, written by
//!                           [`Page::seal`] just before the page goes to
//!                           disk and verified by [`Page::verify`] on
//!                           every read
//! offset  4..12  page LSN   the WAL position of the last log record
//!                           that described this page; the buffer pool's
//!                           flush-before-write discipline flushes the
//!                           log up to this LSN before the page is
//!                           written (see [`crate::paged::buffer`])
//! offset 12..14  slot count
//! offset 14..16  free ptr   records grow downward from PAGE_SIZE, the
//!                           slot directory grows upward from the header
//! ```
//!
//! Records are variable-length byte strings addressed by slot number;
//! each slot directory entry is `(offset: u16, len: u16)`. The node
//! table stores fixed 12-byte records through the same slotted API so
//! one code path serves all four page kinds (node / text / attr / meta).

use std::fmt;

/// Size of every page, on disk and in a buffer frame.
pub const PAGE_SIZE: usize = 4096;

/// Bytes reserved for the page header.
pub const PAGE_HEADER: usize = 16;

/// Bytes of one slot directory entry.
pub const SLOT_SIZE: usize = 4;

/// Largest record a single page can hold.
pub const MAX_RECORD: usize = PAGE_SIZE - PAGE_HEADER - SLOT_SIZE;

/// Page number within a store file.
pub type PageId = u32;

/// What a page stores — logged with every page format so recovery can
/// tell the table extents apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageKind {
    /// The file header / catalog root (page 0).
    Header = 0,
    /// Fixed-width interval-encoding node records.
    Node = 1,
    /// Text-content chunk records.
    Text = 2,
    /// Attribute records.
    Attr = 3,
    /// Catalog blob continuation pages.
    Meta = 4,
}

impl PageKind {
    /// Decode from the logged byte.
    pub fn from_u8(v: u8) -> Option<PageKind> {
        Some(match v {
            0 => PageKind::Header,
            1 => PageKind::Node,
            2 => PageKind::Text,
            3 => PageKind::Attr,
            4 => PageKind::Meta,
            _ => return None,
        })
    }
}

impl fmt::Display for PageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// FNV-1a over `bytes` — the page checksum. Hand-rolled (no external
/// crates) and stable across platforms: little-endian byte order is
/// used for every multi-byte field on the page.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut hash = 0x811c_9dc5u32;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// One in-memory page image.
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// A zeroed page with an initialized (empty) slot directory.
    pub fn new() -> Page {
        let mut page = Page {
            bytes: Box::new([0u8; PAGE_SIZE]),
        };
        page.set_free_ptr(PAGE_SIZE as u16);
        page
    }

    /// The raw page image (for disk writes).
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// The raw page image, mutable (for disk reads).
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    // ---- header fields ---------------------------------------------------

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.bytes[off], self.bytes[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian `u32` at a byte offset.
    pub fn read_u32(&self, off: usize) -> u32 {
        super::layout::le_u32(&self.bytes[..], off)
    }

    /// Write a little-endian `u32` at a byte offset.
    pub fn write_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian `u64` at a byte offset.
    pub fn read_u64(&self, off: usize) -> u64 {
        {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&self.bytes[off..off + 8]);
            u64::from_le_bytes(bytes)
        }
    }

    /// Write a little-endian `u64` at a byte offset.
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// The page LSN — the WAL position of the last record describing
    /// this page.
    pub fn lsn(&self) -> u64 {
        self.read_u64(4)
    }

    /// Stamp the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.write_u64(4, lsn);
    }

    /// Number of records on the page.
    pub fn slot_count(&self) -> u16 {
        self.read_u16(12)
    }

    fn set_slot_count(&mut self, n: u16) {
        self.write_u16(12, n);
    }

    fn free_ptr(&self) -> u16 {
        self.read_u16(14)
    }

    fn set_free_ptr(&mut self, p: u16) {
        self.write_u16(14, p);
    }

    /// Bytes still available for one more record (including its slot).
    pub fn free_space(&self) -> usize {
        self.free_ptr() as usize - (PAGE_HEADER + self.slot_count() as usize * SLOT_SIZE)
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        len + SLOT_SIZE <= self.free_space()
    }

    // ---- slotted records -------------------------------------------------

    /// Append a record, returning its slot number, or `None` if the page
    /// is full.
    ///
    /// # Panics
    /// Panics if `rec` exceeds [`MAX_RECORD`] — callers chunk larger
    /// payloads (the text table) or reject them outright.
    pub fn insert(&mut self, rec: &[u8]) -> Option<u16> {
        assert!(
            rec.len() <= MAX_RECORD,
            "record of {} bytes exceeds MAX_RECORD ({MAX_RECORD})",
            rec.len()
        );
        if !self.fits(rec.len()) {
            return None;
        }
        let slot = self.slot_count();
        let start = self.free_ptr() as usize - rec.len();
        self.bytes[start..start + rec.len()].copy_from_slice(rec);
        let dir = PAGE_HEADER + slot as usize * SLOT_SIZE;
        self.write_u16(dir, start as u16);
        self.write_u16(dir + 2, rec.len() as u16);
        self.set_free_ptr(start as u16);
        self.set_slot_count(slot + 1);
        Some(slot)
    }

    /// The record stored in `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn record(&self, slot: u16) -> &[u8] {
        assert!(
            slot < self.slot_count(),
            "slot {slot} out of range (page has {})",
            self.slot_count()
        );
        let dir = PAGE_HEADER + slot as usize * SLOT_SIZE;
        let start = self.read_u16(dir) as usize;
        let len = self.read_u16(dir + 2) as usize;
        &self.bytes[start..start + len]
    }

    // ---- checksum --------------------------------------------------------

    /// Compute and store the checksum — called by the buffer pool just
    /// before the page image goes to disk.
    pub fn seal(&mut self) {
        let sum = checksum(&self.bytes[4..]);
        self.write_u32(0, sum);
    }

    /// Whether the stored checksum matches the page contents — verified
    /// on every disk read.
    pub fn verify(&self) -> bool {
        self.read_u32(0) == checksum(&self.bytes[4..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slotted_insert_and_read_back() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"paged world").unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(p.record(0), b"hello");
        assert_eq!(p.record(1), b"paged world");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn free_space_shrinks_by_record_plus_slot() {
        let mut p = Page::new();
        let before = p.free_space();
        p.insert(b"12345678").unwrap();
        assert_eq!(p.free_space(), before - 8 - SLOT_SIZE);
    }

    #[test]
    fn full_page_rejects_inserts() {
        let mut p = Page::new();
        let rec = [7u8; 1000];
        let mut inserted = 0;
        while p.insert(&rec).is_some() {
            inserted += 1;
        }
        assert_eq!(inserted, (PAGE_SIZE - PAGE_HEADER) / (1000 + SLOT_SIZE));
        assert!(p.insert(&rec).is_none());
        // Every record survived intact.
        for slot in 0..p.slot_count() {
            assert_eq!(p.record(slot), &rec);
        }
    }

    #[test]
    fn max_record_fills_a_fresh_page() {
        let mut p = Page::new();
        let rec = vec![1u8; MAX_RECORD];
        assert!(p.insert(&rec).is_some());
        assert!(!p.fits(1));
    }

    #[test]
    fn seal_then_verify_round_trips_and_detects_corruption() {
        let mut p = Page::new();
        p.insert(b"durable bytes").unwrap();
        p.set_lsn(42);
        p.seal();
        assert!(p.verify());
        assert_eq!(p.lsn(), 42);
        // Any payload flip breaks the checksum.
        p.bytes_mut()[2000] ^= 0xff;
        assert!(!p.verify());
        p.bytes_mut()[2000] ^= 0xff;
        assert!(p.verify());
        // Flipping the stored checksum itself is also caught.
        p.bytes_mut()[0] ^= 0x01;
        assert!(!p.verify());
    }

    #[test]
    fn page_kind_round_trips() {
        for kind in [
            PageKind::Header,
            PageKind::Node,
            PageKind::Text,
            PageKind::Attr,
            PageKind::Meta,
        ] {
            assert_eq!(PageKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(PageKind::from_u8(250), None);
    }
}
