//! Backend **H** — the disk-resident paged interval store.
//!
//! `PagedStore` keeps the same logical encoding as Systems E/F (the
//! containment intervals of Zhang et al. \[26\]) but stores it in a page
//! file served through a bounded [`BufferPool`], so the resident
//! footprint is the pool's frame budget plus the catalog — not the
//! document. Bulkload runs *through* the pool (exercising eviction and
//! the WAL's log-before-data discipline), and a finished file re-opens
//! cold: [`PagedStore::open`] reads the header and catalog pages only,
//! no XML parse.
//!
//! Navigation pins pages per record touch. Node records are fixed-width
//! ([`NODES_PER_PAGE`] per page), so a node id maps to a `(page, slot)`
//! pair by arithmetic; text and attribute lookups binary-search the
//! catalog's sparse first-id-per-page indexes. The borrowed-`&str`
//! trait methods (`text`, `attributes_iter`) cannot hand out references
//! into evictable frames, so they fall back to lazily-built
//! stable-address caches — every hot path (`string_value_into`,
//! `serialize_node_to`, `attribute`, `attributes`,
//! [`XmlStore::is_text_node`]) is overridden with owned page reads and
//! never touches them.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use xmark_xml::Document;

use crate::axis::{AttrIter, ChildIter, ChildrenNamed, DescendantsNamed};
use crate::index::IndexManager;
use crate::loader::{parent_array, subtree_ends, NONE};
use crate::traits::{Node, PlannerCaps, SystemId, XmlStore};

use super::buffer::{BufferPool, PageGuard, PoolStats, ReplacerKind};
use super::file::FileManager;
use super::layout::{le_u16, le_u32, Catalog, Header, NodeRec, NODES_PER_PAGE, TEXT_CHUNK};
use super::page::{PageId, PageKind};
use super::wal::{LogManager, LogRecord};

/// Text-node marker in the tag-code column (same sentinel as E/F).
const TEXT_TAG: u16 = u16::MAX;

/// One lazily-filled slot per node of a borrow-compat cache.
type LazySlots<T> = OnceLock<Vec<OnceLock<T>>>;
/// Owned attribute list, cached for the borrowing `attributes_iter`.
type AttrList = Box<[(String, String)]>;

/// Default frame budget: 256 × 4 KiB = 1 MiB of resident page cache.
pub const DEFAULT_POOL_PAGES: usize = 256;

/// Disk-resident interval store — the paper's architecture H.
pub struct PagedStore {
    pool: BufferPool,
    wal: Arc<LogManager>,
    header: Header,
    catalog: Catalog,
    tag_lookup: HashMap<String, u16>,
    path: PathBuf,
    wal_path: PathBuf,
    /// Delete the page + log files on drop (scratch stores).
    ephemeral: bool,
    /// Stable-address compat caches for the borrowed-`&str` trait
    /// methods; unallocated until a generic caller actually uses one.
    text_cache: LazySlots<Box<str>>,
    attr_cache: LazySlots<AttrList>,
    indexes: IndexManager,
    metadata: AtomicU64,
}

/// Fills one contiguous same-kind extent through the pool, logging each
/// page format and tracking the sparse first-owner-per-page index.
struct ExtentWriter<'a> {
    pool: &'a BufferPool,
    wal: &'a LogManager,
    kind: PageKind,
    guard: Option<PageGuard<'a>>,
    pages: u32,
    firsts: Vec<u32>,
}

impl<'a> ExtentWriter<'a> {
    fn new(pool: &'a BufferPool, wal: &'a LogManager, kind: PageKind) -> Self {
        ExtentWriter {
            pool,
            wal,
            kind,
            guard: None,
            pages: 0,
            firsts: Vec::new(),
        }
    }

    fn push(&mut self, owner: u32, rec: &[u8]) -> io::Result<()> {
        loop {
            if let Some(g) = self.guard.as_mut() {
                if g.write().insert(rec).is_some() {
                    return Ok(());
                }
            }
            let (pid, mut g) = self.pool.pin_new()?;
            let lsn = self.wal.append(&LogRecord::FormatPage {
                page: pid,
                kind: self.kind,
            });
            g.write().set_lsn(lsn);
            self.firsts.push(owner);
            self.pages += 1;
            self.guard = Some(g);
        }
    }

    fn finish(self) -> (u32, Vec<u32>) {
        (self.pages, self.firsts)
    }
}

/// The `.wal` sibling of a page file — the log [`PagedStore::create_at`]
/// writes and crash recovery (`xmark_txn::recover_paged`) scans before
/// reopening.
pub fn wal_path_for(path: &Path) -> PathBuf {
    path.with_extension("wal")
}

fn corrupt(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl PagedStore {
    /// Bulkload `doc` into a new page file at `path` (WAL alongside,
    /// `.wal` extension), serving reads through a pool of `pool_pages`
    /// frames. The load itself runs through the pool, so a pool smaller
    /// than the file evicts during the load.
    ///
    /// # Errors
    /// I/O failure creating or writing the files.
    pub fn create_at(path: &Path, doc: &Document, pool_pages: usize) -> io::Result<PagedStore> {
        PagedStore::create_at_with(path, doc, pool_pages, ReplacerKind::default())
    }

    /// [`PagedStore::create_at`] with an explicit pool replacement
    /// policy (see [`ReplacerKind`]).
    ///
    /// # Errors
    /// I/O failure creating or writing the files.
    pub fn create_at_with(
        path: &Path,
        doc: &Document,
        pool_pages: usize,
        replacer: ReplacerKind,
    ) -> io::Result<PagedStore> {
        let n = doc.node_count();
        let parent = parent_array(doc);
        let end = subtree_ends(doc);

        // Intern tags and count extents (the planner's exact statistics).
        let mut tag_code = vec![TEXT_TAG; n];
        let mut tag_names: Vec<String> = Vec::new();
        let mut tag_lookup: HashMap<String, u16> = HashMap::new();
        let mut tag_counts: Vec<u32> = Vec::new();
        for id in 0..n as u32 {
            let node = xmark_xml::NodeId(id);
            if doc.text(node).is_some() {
                continue;
            }
            let tag = doc.tag_name(node);
            let code = match tag_lookup.get(tag) {
                Some(&c) => c,
                None => {
                    let c = tag_names.len() as u16;
                    tag_names.push(tag.to_string());
                    tag_lookup.insert(tag.to_string(), c);
                    tag_counts.push(0);
                    c
                }
            };
            tag_code[id as usize] = code;
            tag_counts[code as usize] += 1;
        }

        let wal_path = wal_path_for(path);
        let wal = Arc::new(LogManager::create(&wal_path)?);
        wal.append(&LogRecord::BeginBulkLoad { nodes: n as u32 });
        let pool = BufferPool::with_replacer(
            FileManager::create(path)?,
            Some(Arc::clone(&wal)),
            pool_pages,
            replacer,
        );

        // Page 0 is the header; its contents are written *last* so a
        // torn load leaves no valid header behind.
        {
            let (pid, mut g) = pool.pin_new()?;
            debug_assert_eq!(pid, 0, "header must be page 0");
            let lsn = wal.append(&LogRecord::FormatPage {
                page: 0,
                kind: PageKind::Header,
            });
            g.write().set_lsn(lsn);
        }

        // Node extent: fixed 12-byte interval records in id order.
        let node_start = pool.num_pages();
        let mut writer = ExtentWriter::new(&pool, &wal, PageKind::Node);
        for id in 0..n as u32 {
            let rec = NodeRec {
                parent: parent[id as usize],
                end: end[id as usize],
                tag_code: tag_code[id as usize],
                level: 0,
            };
            writer.push(id, &rec.encode())?;
        }
        let (node_pages, _) = writer.finish();

        // Text extent: [owner u32][chunk] records, long values split on
        // char boundaries across consecutive records.
        let text_start = pool.num_pages();
        let mut writer = ExtentWriter::new(&pool, &wal, PageKind::Text);
        for id in 0..n as u32 {
            let Some(text) = doc.text(xmark_xml::NodeId(id)) else {
                continue;
            };
            let mut rest = text;
            loop {
                let mut cut = TEXT_CHUNK.min(rest.len());
                while !rest.is_char_boundary(cut) {
                    cut -= 1;
                }
                let mut rec = Vec::with_capacity(4 + cut);
                rec.extend_from_slice(&id.to_le_bytes());
                rec.extend_from_slice(&rest.as_bytes()[..cut]);
                writer.push(id, &rec)?;
                rest = &rest[cut..];
                if rest.is_empty() {
                    break;
                }
            }
        }
        let (text_pages, text_first_id) = writer.finish();

        // Attribute extent: [owner u32][name_code u16][value] records,
        // consecutive per owner in document order.
        let attr_start = pool.num_pages();
        let mut attr_names: Vec<String> = Vec::new();
        let mut attr_lookup: HashMap<String, u16> = HashMap::new();
        let mut writer = ExtentWriter::new(&pool, &wal, PageKind::Attr);
        for id in 0..n as u32 {
            for (sym, value) in doc.attributes(xmark_xml::NodeId(id)) {
                let name = doc.interner().resolve(*sym);
                let code = match attr_lookup.get(name) {
                    Some(&c) => c,
                    None => {
                        let c = attr_names.len() as u16;
                        attr_names.push(name.to_string());
                        attr_lookup.insert(name.to_string(), c);
                        c
                    }
                };
                let mut rec = Vec::with_capacity(6 + value.len());
                rec.extend_from_slice(&id.to_le_bytes());
                rec.extend_from_slice(&code.to_le_bytes());
                rec.extend_from_slice(value.as_bytes());
                writer.push(id, &rec)?;
            }
        }
        let (attr_pages, attr_first_owner) = writer.finish();

        // Catalog blob, chunked over meta pages.
        let catalog = Catalog {
            tag_names,
            attr_names,
            tag_counts,
            text_first_id,
            attr_first_owner,
        };
        let blob = catalog.encode();
        let meta_start = pool.num_pages();
        let mut writer = ExtentWriter::new(&pool, &wal, PageKind::Meta);
        for chunk in blob.chunks(TEXT_CHUNK.max(1)) {
            writer.push(0, chunk)?;
        }
        let (meta_pages, _) = writer.finish();

        // Commit: data pages down (log first, per page LSN), then the
        // bulkload end marker, then the header — strictly last.
        pool.flush_all()?;
        let end_lsn = wal.append(&LogRecord::EndBulkLoad {
            pages: pool.num_pages(),
        });
        wal.flush(end_lsn)?;
        let header = Header {
            node_count: n as u32,
            root: doc.root_element().0,
            node_start,
            node_pages,
            text_start,
            text_pages,
            attr_start,
            attr_pages,
            meta_start,
            meta_pages,
            meta_len: blob.len() as u32,
        };
        {
            let mut g = pool.pin(0)?;
            header.write_to(&mut g.write());
        }
        pool.flush_all()?;

        Ok(PagedStore {
            pool,
            wal,
            header,
            catalog,
            tag_lookup,
            path: path.to_path_buf(),
            wal_path,
            ephemeral: false,
            text_cache: OnceLock::new(),
            attr_cache: OnceLock::new(),
            indexes: IndexManager::new(),
            metadata: AtomicU64::new(0),
        })
    }

    /// Open a previously written page file **cold**: validate the WAL's
    /// bulkload end marker, read the header and catalog pages, and serve
    /// everything else on demand — no XML parse.
    ///
    /// # Errors
    /// `InvalidData` for a torn load (WAL without `EndBulkLoad`), a bad
    /// header, or checksum mismatches on the pages read here; plain I/O
    /// errors otherwise.
    pub fn open(path: &Path, pool_pages: usize) -> io::Result<PagedStore> {
        PagedStore::open_with(path, pool_pages, ReplacerKind::default())
    }

    /// [`PagedStore::open`] with an explicit pool replacement policy.
    ///
    /// # Errors
    /// As [`PagedStore::open`].
    pub fn open_with(
        path: &Path,
        pool_pages: usize,
        replacer: ReplacerKind,
    ) -> io::Result<PagedStore> {
        let wal_path = wal_path_for(path);
        let records = LogManager::read_all(&wal_path)?;
        if !records
            .iter()
            .any(|r| matches!(r, LogRecord::EndBulkLoad { .. }))
        {
            return Err(corrupt(format!(
                "torn bulkload: {} has no EndBulkLoad record",
                wal_path.display()
            )));
        }
        let wal = Arc::new(LogManager::open(&wal_path)?);
        let pool = BufferPool::with_replacer(
            FileManager::open(path)?,
            Some(Arc::clone(&wal)),
            pool_pages,
            replacer,
        );
        let header = {
            let g = pool.pin(0)?;
            let page = g.read();
            Header::read_from(&page)?
        };
        let mut blob = Vec::with_capacity(header.meta_len as usize);
        for pi in 0..header.meta_pages {
            let g = pool.pin(header.meta_start + pi)?;
            let page = g.read();
            for slot in 0..page.slot_count() {
                blob.extend_from_slice(page.record(slot));
            }
        }
        if blob.len() != header.meta_len as usize {
            return Err(corrupt(format!(
                "catalog is {} bytes, header says {}",
                blob.len(),
                header.meta_len
            )));
        }
        let catalog = Catalog::decode(&blob)?;
        let tag_lookup = catalog
            .tag_names
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u16))
            .collect();
        Ok(PagedStore {
            pool,
            wal,
            header,
            catalog,
            tag_lookup,
            path: path.to_path_buf(),
            wal_path,
            ephemeral: false,
            text_cache: OnceLock::new(),
            attr_cache: OnceLock::new(),
            indexes: IndexManager::new(),
            metadata: AtomicU64::new(0),
        })
    }

    /// Bulkload `xml` into a scratch page file under
    /// [`crate::paged::scratch_dir`]; the files are deleted when the
    /// store drops. This is the [`crate::build_store`] path for H.
    ///
    /// # Errors
    /// Propagates XML parse errors. Scratch-file I/O failure is
    /// environmental and panics.
    pub fn load_temp(xml: &str, pool_pages: usize) -> Result<PagedStore, xmark_xml::Error> {
        PagedStore::load_temp_with(xml, pool_pages, ReplacerKind::default())
    }

    /// [`PagedStore::load_temp`] with an explicit pool replacement
    /// policy.
    ///
    /// # Errors
    /// As [`PagedStore::load_temp`].
    pub fn load_temp_with(
        xml: &str,
        pool_pages: usize,
        replacer: ReplacerKind,
    ) -> Result<PagedStore, xmark_xml::Error> {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let doc = xmark_xml::parse_document(xml)?;
        let path = super::scratch_dir().join(format!(
            "h-{}-{}.pages",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut store = PagedStore::create_at_with(&path, &doc, pool_pages, replacer)
            .unwrap_or_else(|e| panic!("scratch page store at {}: {e}", path.display()));
        store.ephemeral = true;
        Ok(store)
    }

    /// The page file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Buffer-pool counters (hits, misses, evictions, page I/O).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Frame budget of the pool.
    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Pages in the store file.
    pub fn num_pages(&self) -> u32 {
        self.pool.num_pages()
    }

    /// Keep the page + WAL files on disk when this store drops (scratch
    /// stores delete them by default).
    pub fn persist(&mut self) {
        self.ephemeral = false;
    }

    /// Delete the page + WAL files when this store drops — the inverse of
    /// [`PagedStore::persist`], for stores created at explicit scratch
    /// paths (per-shard page files) that should not outlive their union.
    pub fn mark_ephemeral(&mut self) {
        self.ephemeral = true;
    }

    // ---- page reads ------------------------------------------------------

    fn pin(&self, pid: PageId) -> PageGuard<'_> {
        self.pool
            .pin(pid)
            .unwrap_or_else(|e| panic!("paged read of page {pid}: {e}"))
    }

    fn node_rec(&self, id: u32) -> NodeRec {
        let page = self.header.node_start + id / NODES_PER_PAGE as u32;
        let slot = (id % NODES_PER_PAGE as u32) as u16;
        let guard = self.pin(page);
        let page = guard.read();
        NodeRec::decode(page.record(slot))
    }

    /// Locate the first sparse-index page that can hold records of
    /// `owner`, walking back over pages whose first record *is* `owner`
    /// (a value spanning page boundaries).
    fn sparse_start(firsts: &[u32], owner: u32) -> Option<usize> {
        let mut pi = match firsts.partition_point(|&f| f <= owner) {
            0 => return None,
            p => p - 1,
        };
        while pi > 0 && firsts[pi] == owner {
            pi -= 1;
        }
        Some(pi)
    }

    /// Append the text content of text node `id` (concatenating its
    /// chunk records) to `out`.
    fn read_text_into(&self, id: u32, out: &mut String) {
        let Some(start) = Self::sparse_start(&self.catalog.text_first_id, id) else {
            return;
        };
        for pi in start..self.header.text_pages as usize {
            let guard = self.pin(self.header.text_start + pi as u32);
            let page = guard.read();
            for slot in 0..page.slot_count() {
                let rec = page.record(slot);
                let owner = le_u32(rec, 0);
                if owner < id {
                    continue;
                }
                if owner > id {
                    return;
                }
                // Chunks are split on char boundaries at write time, and
                // the page checksum was verified at pin time — a lossy
                // decode never actually lossifies, it just keeps the
                // infallible read path panic-free.
                out.push_str(&String::from_utf8_lossy(&rec[4..]));
            }
        }
    }

    /// All attributes of node `id`, read from the attribute extent.
    fn read_attrs(&self, id: u32) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let Some(start) = Self::sparse_start(&self.catalog.attr_first_owner, id) else {
            return out;
        };
        for pi in start..self.header.attr_pages as usize {
            let guard = self.pin(self.header.attr_start + pi as u32);
            let page = guard.read();
            for slot in 0..page.slot_count() {
                let rec = page.record(slot);
                let owner = le_u32(rec, 0);
                if owner < id {
                    continue;
                }
                if owner > id {
                    return out;
                }
                let code = le_u16(rec, 4);
                let value = String::from_utf8_lossy(&rec[6..]).into_owned();
                out.push((self.catalog.attr_names[code as usize].clone(), value));
            }
        }
        out
    }

    fn text_cache(&self) -> &[OnceLock<Box<str>>] {
        self.text_cache.get_or_init(|| {
            (0..self.header.node_count)
                .map(|_| OnceLock::new())
                .collect()
        })
    }

    fn attr_cache(&self) -> &[OnceLock<AttrList>] {
        self.attr_cache.get_or_init(|| {
            (0..self.header.node_count)
                .map(|_| OnceLock::new())
                .collect()
        })
    }
}

impl fmt::Debug for PagedStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagedStore")
            .field("path", &self.path)
            .field("nodes", &self.header.node_count)
            .field("pages", &self.pool.num_pages())
            .field("pool_capacity", &self.pool.capacity())
            .finish_non_exhaustive()
    }
}

impl Drop for PagedStore {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_file(&self.path);
            let _ = std::fs::remove_file(&self.wal_path);
        }
    }
}

// ---- streaming cursors over pinned pages --------------------------------

/// Child cursor: interval hop (`cur = end(cur) + 1`) where each `end`
/// lookup is a page read through the pool.
pub struct PagedChildren<'a> {
    store: &'a PagedStore,
    cur: u32,
    stop: u32,
}

impl Iterator for PagedChildren<'_> {
    type Item = Node;

    fn next(&mut self) -> Option<Node> {
        if self.cur > self.stop {
            return None;
        }
        let n = Node(self.cur);
        self.cur = self.store.node_rec(self.cur).end + 1;
        Some(n)
    }
}

/// [`PagedChildren`] plus a tag-code test.
pub struct PagedChildrenNamed<'a> {
    store: &'a PagedStore,
    cur: u32,
    stop: u32,
    code: u16,
}

impl Iterator for PagedChildrenNamed<'_> {
    type Item = Node;

    fn next(&mut self) -> Option<Node> {
        while self.cur <= self.stop {
            let id = self.cur;
            let rec = self.store.node_rec(id);
            self.cur = rec.end + 1;
            if rec.tag_code == self.code {
                return Some(Node(id));
            }
        }
        None
    }
}

impl PagedChildrenNamed<'_> {
    /// Native block fill: pin each node page once and hop every child
    /// whose record lives on it, instead of one pool pin per child.
    pub(crate) fn next_block(&mut self, out: &mut crate::axis::NodeBatch) {
        let per_page = NODES_PER_PAGE as u32;
        while self.cur <= self.stop && !out.is_full() {
            let page_no = self.cur / per_page;
            let guard = self.store.pin(self.store.header.node_start + page_no);
            let page = guard.read();
            while self.cur <= self.stop && !out.is_full() && self.cur / per_page == page_no {
                let id = self.cur;
                let rec = NodeRec::decode(page.record((id % per_page) as u16));
                self.cur = rec.end + 1;
                if rec.tag_code == self.code {
                    out.push(Node(id));
                }
            }
        }
    }
}

/// Descendant scan: every id in the interval, tag-code tested — the
/// sequential-page access pattern the LRU pool likes.
pub struct PagedScanNamed<'a> {
    store: &'a PagedStore,
    cur: u32,
    stop: u32,
    code: u16,
}

impl Iterator for PagedScanNamed<'_> {
    type Item = Node;

    fn next(&mut self) -> Option<Node> {
        while self.cur <= self.stop {
            let id = self.cur;
            self.cur += 1;
            if self.store.node_rec(id).tag_code == self.code {
                return Some(Node(id));
            }
        }
        None
    }
}

impl PagedScanNamed<'_> {
    /// Native block fill: pin each node page once and tag-test the whole
    /// slot run on it — the per-page unit of the vectorized scan.
    pub(crate) fn next_block(&mut self, out: &mut crate::axis::NodeBatch) {
        let per_page = NODES_PER_PAGE as u32;
        while self.cur <= self.stop && !out.is_full() {
            let page_no = self.cur / per_page;
            let run_end = ((page_no + 1) * per_page - 1).min(self.stop);
            let guard = self.store.pin(self.store.header.node_start + page_no);
            let page = guard.read();
            while self.cur <= run_end {
                let id = self.cur;
                self.cur += 1;
                if NodeRec::decode(page.record((id % per_page) as u16)).tag_code == self.code {
                    out.push(Node(id));
                    if out.is_full() {
                        return;
                    }
                }
            }
        }
    }
}

impl XmlStore for PagedStore {
    fn system(&self) -> SystemId {
        SystemId::H
    }

    fn root(&self) -> Node {
        Node(self.header.root)
    }

    fn node_count(&self) -> usize {
        self.header.node_count as usize
    }

    fn size_bytes(&self) -> usize {
        // Resident only: pool frames, catalog, tag lookup, any compat
        // caches actually allocated, and the shared indexes. The page
        // file itself is disk_bytes().
        let mut total = self.pool.resident_bytes() + self.catalog.resident_bytes();
        total += self
            .tag_lookup
            .keys()
            .map(|k| k.capacity() + 2 + 48)
            .sum::<usize>();
        if let Some(cache) = self.text_cache.get() {
            total += cache.len() * std::mem::size_of::<OnceLock<Box<str>>>();
            total += cache
                .iter()
                .filter_map(|c| c.get())
                .map(|s| s.len())
                .sum::<usize>();
        }
        if let Some(cache) = self.attr_cache.get() {
            total += cache.len() * std::mem::size_of::<OnceLock<Box<[(String, String)]>>>();
            total += cache
                .iter()
                .filter_map(|c| c.get())
                .flat_map(|l| l.iter())
                .map(|(k, v)| k.capacity() + v.capacity() + 48)
                .sum::<usize>();
        }
        total + self.indexes.size_bytes()
    }

    fn disk_bytes(&self) -> usize {
        self.pool.disk_bytes() + self.wal.size_bytes()
    }

    fn paged_stats(&self) -> Option<PoolStats> {
        Some(self.pool.stats())
    }

    fn txn_wal(&self) -> Option<&LogManager> {
        Some(&self.wal)
    }

    fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    fn tag_of(&self, n: Node) -> Option<&str> {
        match self.node_rec(n.0).tag_code {
            TEXT_TAG => None,
            c => Some(&self.catalog.tag_names[c as usize]),
        }
    }

    fn is_text_node(&self, n: Node) -> bool {
        self.node_rec(n.0).tag_code == TEXT_TAG
    }

    fn parent(&self, n: Node) -> Option<Node> {
        match self.node_rec(n.0).parent {
            NONE => None,
            p => Some(Node(p)),
        }
    }

    fn text(&self, n: Node) -> Option<&str> {
        // Borrowed-return compat path: generic callers get a lazily
        // cached copy with a stable address. Hot paths never come here —
        // they use is_text_node / string_value_into / serialize_node_to.
        if !self.is_text_node(n) {
            return None;
        }
        Some(self.text_cache()[n.index()].get_or_init(|| {
            let mut s = String::new();
            self.read_text_into(n.0, &mut s);
            s.into_boxed_str()
        }))
    }

    fn attribute(&self, n: Node, name: &str) -> Option<String> {
        self.read_attrs(n.0)
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    fn attributes(&self, n: Node) -> Vec<(String, String)> {
        self.read_attrs(n.0)
    }

    fn attributes_iter(&self, n: Node) -> AttrIter<'_> {
        // Same compat-cache story as text(): prefer attributes().
        let list =
            self.attr_cache()[n.index()].get_or_init(|| self.read_attrs(n.0).into_boxed_slice());
        if list.is_empty() {
            AttrIter::Empty
        } else {
            AttrIter::Pairs(list.iter())
        }
    }

    fn children_iter(&self, n: Node) -> ChildIter<'_> {
        ChildIter::Paged(PagedChildren {
            store: self,
            cur: n.0 + 1,
            stop: self.node_rec(n.0).end,
        })
    }

    fn children_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> ChildrenNamed<'a> {
        let Some(&code) = self.tag_lookup.get(tag) else {
            return ChildrenNamed::Empty;
        };
        ChildrenNamed::Paged(PagedChildrenNamed {
            store: self,
            cur: n.0 + 1,
            stop: self.node_rec(n.0).end,
            code,
        })
    }

    fn descendants_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> DescendantsNamed<'a> {
        let Some(&code) = self.tag_lookup.get(tag) else {
            return DescendantsNamed::Empty;
        };
        DescendantsNamed::PagedScan(PagedScanNamed {
            store: self,
            cur: n.0 + 1,
            stop: self.node_rec(n.0).end,
            code,
        })
    }

    fn string_value_into(&self, n: Node, out: &mut String) {
        let rec = self.node_rec(n.0);
        if rec.tag_code == TEXT_TAG {
            self.read_text_into(n.0, out);
            return;
        }
        // Subtree text in document order == ascending id over the
        // interval; a sequential page scan instead of recursion.
        for id in n.0 + 1..=rec.end {
            if self.node_rec(id).tag_code == TEXT_TAG {
                self.read_text_into(id, out);
            }
        }
    }

    fn serialize_node_to(&self, n: Node, out: &mut dyn fmt::Write) -> fmt::Result {
        let rec = self.node_rec(n.0);
        if rec.tag_code == TEXT_TAG {
            let mut s = String::new();
            self.read_text_into(n.0, &mut s);
            return xmark_xml::escape::escape_text_to(&s, out);
        }
        let tag = &self.catalog.tag_names[rec.tag_code as usize];
        out.write_char('<')?;
        out.write_str(tag)?;
        for (name, value) in self.read_attrs(n.0) {
            out.write_char(' ')?;
            out.write_str(&name)?;
            out.write_str("=\"")?;
            xmark_xml::escape::escape_attr_to(&value, out)?;
            out.write_char('"')?;
        }
        let mut children = PagedChildren {
            store: self,
            cur: n.0 + 1,
            stop: rec.end,
        };
        match children.next() {
            None => out.write_str("/>"),
            Some(first) => {
                out.write_char('>')?;
                self.serialize_node_to(first, out)?;
                for child in children {
                    self.serialize_node_to(child, out)?;
                }
                out.write_str("</")?;
                out.write_str(tag)?;
                out.write_char('>')
            }
        }
    }

    fn begin_compile(&self) {
        self.metadata.store(0, Ordering::Relaxed);
    }

    fn compile_step(&self, tag: &str) -> usize {
        self.metadata.fetch_add(1, Ordering::Relaxed);
        self.tag_lookup
            .get(tag)
            .map(|&c| self.catalog.tag_counts[c as usize] as usize)
            .unwrap_or(0)
    }

    fn metadata_accesses(&self) -> u64 {
        self.metadata.load(Ordering::Relaxed)
    }

    fn planner_caps(&self) -> PlannerCaps {
        PlannerCaps {
            id_index: true,
            // Per-tag extent counts live in the resident catalog.
            exact_statistics: true,
            // Descendant steps should stab the shared posting lists
            // instead of scanning the interval page by page.
            element_index: true,
            value_index: true,
            child_values: true,
            ..PlannerCaps::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::IntervalStore;

    const SAMPLE: &str = r#"<site><regions><europe><item id="item0" featured="yes"><name>cup</name></item><item id="item1"><name>gold coin</name></item></europe></regions><people><person id="person0"><name>Alice &amp; Bob</name></person></people></site>"#;

    fn temp(xml: &str, pool: usize) -> PagedStore {
        PagedStore::load_temp(xml, pool).unwrap()
    }

    #[test]
    fn navigation_matches_the_interval_store() {
        let h = temp(SAMPLE, 8);
        let e = IntervalStore::load_indexed(SAMPLE).unwrap();
        assert_eq!(h.node_count(), e.node_count());
        assert_eq!(h.root(), e.root());
        for id in 0..h.node_count() as u32 {
            let n = Node(id);
            assert_eq!(h.tag_of(n), e.tag_of(n), "tag of {n}");
            assert_eq!(h.parent(n), e.parent(n), "parent of {n}");
            assert_eq!(h.children(n), e.children(n), "children of {n}");
            assert_eq!(h.attributes(n), e.attributes(n), "attrs of {n}");
            assert_eq!(h.string_value(n), e.string_value(n), "value of {n}");
            assert_eq!(h.is_text_node(n), e.is_text_node(n), "is_text {n}");
        }
        let mut hs = String::new();
        let mut es = String::new();
        h.serialize_node(h.root(), &mut hs);
        e.serialize_node(e.root(), &mut es);
        assert_eq!(hs, es, "serialization");
    }

    #[test]
    fn named_cursors_and_lookup_work() {
        let h = temp(SAMPLE, 8);
        let items = h.descendants_named(h.root(), "item");
        assert_eq!(items.len(), 2);
        assert_eq!(h.attribute(items[0], "id").as_deref(), Some("item0"));
        assert_eq!(h.attribute(items[0], "featured").as_deref(), Some("yes"));
        assert_eq!(h.attribute(items[1], "featured"), None);
        let people = h.descendants_named(h.root(), "people")[0];
        assert_eq!(h.children_named(people, "person").len(), 1);
        assert_eq!(h.descendants_named(people, "name").len(), 1);
        let hit = h.lookup_id("person0").unwrap().unwrap();
        assert_eq!(h.tag_of(hit), Some("person"));
        assert_eq!(h.compile_step("item"), 2);
        assert_eq!(h.compile_step("ghost"), 0);
        assert!(h.planner_caps().exact_statistics);
    }

    #[test]
    fn tiny_pool_evicts_but_answers_identically() {
        let big: String = {
            let items: String = (0..200)
                .map(|i| format!("<item id=\"item{i}\"><name>thing {i}</name></item>"))
                .collect();
            format!("<site><regions>{items}</regions></site>")
        };
        let h = temp(&big, 2);
        assert!(
            h.num_pages() > 4,
            "document should span several pages ({})",
            h.num_pages()
        );
        let e = IntervalStore::load_indexed(&big).unwrap();
        let h_names: Vec<String> = h
            .descendants_named(h.root(), "name")
            .iter()
            .map(|&n| h.string_value(n))
            .collect();
        let e_names: Vec<String> = e
            .descendants_named(e.root(), "name")
            .iter()
            .map(|&n| e.string_value(n))
            .collect();
        assert_eq!(h_names, e_names);
        let stats = h.pool_stats();
        assert!(stats.evictions > 0, "a 2-frame pool must evict: {stats:?}");
        assert!(stats.hits > 0);
    }

    #[test]
    fn text_longer_than_a_page_round_trips() {
        let long: String = "chunked text αβγ ".repeat(600); // ≫ one page, multi-byte chars
        let xml = format!("<site><doc>{long}</doc></site>");
        let h = temp(&xml, 4);
        let doc = h.descendants_named(h.root(), "doc")[0];
        assert_eq!(h.string_value(doc), long);
        // The borrowed compat path agrees with the owned read.
        let text_child = h.children(doc)[0];
        assert_eq!(h.text(text_child), Some(long.as_str()));
    }

    #[test]
    fn reopen_serves_queries_without_the_xml() {
        let path =
            super::super::scratch_dir().join(format!("h-reopen-{}.pages", std::process::id()));
        let doc = xmark_xml::parse_document(SAMPLE).unwrap();
        let mut serialized = String::new();
        {
            let store = PagedStore::create_at(&path, &doc, 8).unwrap();
            store.serialize_node(store.root(), &mut serialized);
        }
        let cold = PagedStore::open(&path, 4).unwrap();
        assert_eq!(cold.node_count(), doc.node_count());
        let mut again = String::new();
        cold.serialize_node(cold.root(), &mut again);
        assert_eq!(again, serialized);
        let stats = cold.pool_stats();
        assert!(stats.pages_read > 0, "cold open reads pages: {stats:?}");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(wal_path_for(&path)).unwrap();
    }

    #[test]
    fn torn_wal_is_rejected_at_open() {
        let path = super::super::scratch_dir().join(format!("h-torn-{}.pages", std::process::id()));
        let doc = xmark_xml::parse_document(SAMPLE).unwrap();
        drop(PagedStore::create_at(&path, &doc, 8).unwrap());
        // Rewrite the WAL without its EndBulkLoad marker — a load that
        // died mid-flight.
        let wal_path = wal_path_for(&path);
        let log = LogManager::create(&wal_path).unwrap();
        log.append(&LogRecord::BeginBulkLoad { nodes: 1 });
        log.flush_all().unwrap();
        drop(log);
        let err = PagedStore::open(&path, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("torn"), "{err}");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&wal_path).unwrap();
    }

    #[test]
    fn corrupted_data_page_is_detected() {
        let path =
            super::super::scratch_dir().join(format!("h-corrupt-{}.pages", std::process::id()));
        let doc = xmark_xml::parse_document(SAMPLE).unwrap();
        drop(PagedStore::create_at(&path, &doc, 8).unwrap());
        // Flip a byte in page 1 (first node page).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[super::super::PAGE_SIZE + 64] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let cold = PagedStore::open(&path, 4).unwrap(); // header + meta still fine
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cold.children(cold.root());
        }));
        assert!(err.is_err(), "reading the corrupted page must fail");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(wal_path_for(&path)).unwrap();
    }

    #[test]
    fn resident_bytes_stay_bounded_by_the_pool_not_the_file() {
        let big: String = {
            let items: String = (0..400)
                .map(|i| format!("<item id=\"i{i}\"><name>widget number {i}</name></item>"))
                .collect();
            format!("<site><regions>{items}</regions></site>")
        };
        let h = temp(&big, 4);
        let _ = h.descendants_named(h.root(), "name");
        assert!(h.disk_bytes() > 10 * super::super::PAGE_SIZE);
        // Resident: 4 frames + catalog + lookup — far below the file.
        assert!(
            h.size_bytes() < h.disk_bytes() / 2,
            "resident {} vs disk {}",
            h.size_bytes(),
            h.disk_bytes()
        );
    }
}
