//! The minimal append-only write-ahead log.
//!
//! The paged backend is read-mostly today (bulkload, then queries), but
//! the ROADMAP's structural-update path needs a durability substrate —
//! this module is it. The contract is the classic WAL discipline:
//!
//! 1. every page mutation is *described* by a [`LogRecord`] appended
//!    here first, and the resulting [`Lsn`] is stamped onto the page;
//! 2. before the buffer pool writes a dirty page to the data file, it
//!    calls [`LogManager::flush`] up to that page's LSN (**log before
//!    data** — see `BufferPool::write_back`);
//! 3. [`LogManager::read_all`] replays the records at open time, which
//!    for the bulkload means one integrity check: a page file whose log
//!    lacks the closing [`LogRecord::EndBulkLoad`] was torn mid-load and
//!    is rejected rather than silently served.
//!
//! The transaction layer (`xmark-txn`) extends the log with **logical
//! redo/undo records** (`Txn*` variants): a commit appends one
//! [`LogRecord::TxnBegin`], the transaction's operations, and a closing
//! [`LogRecord::TxnCommit`], then forces the log *before* publishing the
//! new snapshot (force-log-at-commit). The commit protocol is no-steal
//! (an uncommitted transaction's delta lives only in writer-private
//! memory, so aborts never reach the log) and no-force for data pages
//! (the bulkloaded pages are immutable; committed structural changes are
//! re-derived from the log). Crash recovery is therefore exactly: replay
//! the transactions whose `TxnCommit` survived, in log order — see
//! `xmark_txn::recover_paged`. Undo payloads (`undo_xml`, old values)
//! ride along ARIES-style so losers are diagnosable, but no-steal means
//! they are never applied.
//!
//! Records are length-framed (`len: u32, tag: u8, payload`); an LSN is
//! the byte offset just *past* a record, so `flush(lsn)` is "make the
//! first `lsn` log bytes durable". (The length field is 4 bytes because
//! a logical insert record carries a whole subtree as XML text, which
//! can exceed 64 KiB.)

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use super::page::{PageId, PageKind};

use crate::sync::lock;

/// A log sequence number: the byte offset just past a record.
pub type Lsn = u64;

/// One write-ahead log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A bulkload began (node count known up front from the parse).
    BeginBulkLoad {
        /// Total nodes the load will write.
        nodes: u32,
    },
    /// Page `page` was formatted as `kind` and filled by the load.
    FormatPage {
        /// The page number.
        page: PageId,
        /// What the page stores.
        kind: PageKind,
    },
    /// The bulkload committed: all pages flushed, header written.
    EndBulkLoad {
        /// Total pages in the finished file.
        pages: u32,
    },
    /// All dirty state up to this point is on disk.
    Checkpoint,
    /// A transaction's commit began writing its logical records.
    TxnBegin {
        /// The transaction id (monotonic per store).
        txn: u64,
    },
    /// Redo: a subtree (as XML text) was inserted as the last child of
    /// `parent`. Replay re-parses the XML and re-inserts; deterministic
    /// id/rank allocation makes the replayed snapshot identical.
    TxnInsert {
        /// The owning transaction.
        txn: u64,
        /// The parent node id the subtree was appended under.
        parent: u32,
        /// The inserted subtree, serialized.
        xml: String,
    },
    /// Redo: the subtree rooted at `node` was deleted. `undo_xml` is the
    /// ARIES-style undo image (never applied under no-steal).
    TxnDelete {
        /// The owning transaction.
        txn: u64,
        /// The deleted subtree's root id.
        node: u32,
        /// Serialization of the deleted subtree (undo image).
        undo_xml: String,
    },
    /// Redo: the text node `node`'s content was replaced.
    TxnSetText {
        /// The owning transaction.
        txn: u64,
        /// The text node id.
        node: u32,
        /// Previous content (undo image).
        old: String,
        /// New content (redo image).
        new: String,
    },
    /// Redo: attribute `name` of element `node` was set.
    TxnSetAttr {
        /// The owning transaction.
        txn: u64,
        /// The element id.
        node: u32,
        /// The attribute name.
        name: String,
        /// Previous value, `None` when the attribute was absent (undo
        /// image).
        old: Option<String>,
        /// New value (redo image).
        new: String,
    },
    /// The transaction's records are complete; forcing the log past this
    /// point makes the commit durable.
    TxnCommit {
        /// The committed transaction.
        txn: u64,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], off: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(buf.get(*off..*off + 4)?.try_into().ok()?) as usize;
    *off += 4;
    let s = std::str::from_utf8(buf.get(*off..*off + len)?).ok()?;
    *off += len;
    Some(s.to_string())
}

impl LogRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // len, patched below
        match self {
            LogRecord::BeginBulkLoad { nodes } => {
                out.push(0);
                out.extend_from_slice(&nodes.to_le_bytes());
            }
            LogRecord::FormatPage { page, kind } => {
                out.push(1);
                out.extend_from_slice(&page.to_le_bytes());
                out.push(*kind as u8);
            }
            LogRecord::EndBulkLoad { pages } => {
                out.push(2);
                out.extend_from_slice(&pages.to_le_bytes());
            }
            LogRecord::Checkpoint => out.push(3),
            LogRecord::TxnBegin { txn } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::TxnInsert { txn, parent, xml } => {
                out.push(5);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&parent.to_le_bytes());
                put_str(out, xml);
            }
            LogRecord::TxnDelete {
                txn,
                node,
                undo_xml,
            } => {
                out.push(6);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&node.to_le_bytes());
                put_str(out, undo_xml);
            }
            LogRecord::TxnSetText {
                txn,
                node,
                old,
                new,
            } => {
                out.push(7);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&node.to_le_bytes());
                put_str(out, old);
                put_str(out, new);
            }
            LogRecord::TxnSetAttr {
                txn,
                node,
                name,
                old,
                new,
            } => {
                out.push(8);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&node.to_le_bytes());
                put_str(out, name);
                match old {
                    Some(value) => {
                        out.push(1);
                        put_str(out, value);
                    }
                    None => out.push(0),
                }
                put_str(out, new);
            }
            LogRecord::TxnCommit { txn } => {
                out.push(9);
                out.extend_from_slice(&txn.to_le_bytes());
            }
        }
        let len = (out.len() - start - 4) as u32;
        out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Option<LogRecord> {
        let tag = *buf.first()?;
        let body = &buf[1..];
        let u32_at = |b: &[u8], off: usize| -> Option<u32> {
            Some(u32::from_le_bytes(b.get(off..off + 4)?.try_into().ok()?))
        };
        let u64_at = |b: &[u8], off: usize| -> Option<u64> {
            Some(u64::from_le_bytes(b.get(off..off + 8)?.try_into().ok()?))
        };
        Some(match tag {
            0 => LogRecord::BeginBulkLoad {
                nodes: u32_at(body, 0)?,
            },
            1 => LogRecord::FormatPage {
                page: u32_at(body, 0)?,
                kind: PageKind::from_u8(*body.get(4)?)?,
            },
            2 => LogRecord::EndBulkLoad {
                pages: u32_at(body, 0)?,
            },
            3 => LogRecord::Checkpoint,
            4 => LogRecord::TxnBegin {
                txn: u64_at(body, 0)?,
            },
            5 => {
                let mut off = 12;
                LogRecord::TxnInsert {
                    txn: u64_at(body, 0)?,
                    parent: u32_at(body, 8)?,
                    xml: get_str(body, &mut off)?,
                }
            }
            6 => {
                let mut off = 12;
                LogRecord::TxnDelete {
                    txn: u64_at(body, 0)?,
                    node: u32_at(body, 8)?,
                    undo_xml: get_str(body, &mut off)?,
                }
            }
            7 => {
                let mut off = 12;
                LogRecord::TxnSetText {
                    txn: u64_at(body, 0)?,
                    node: u32_at(body, 8)?,
                    old: get_str(body, &mut off)?,
                    new: get_str(body, &mut off)?,
                }
            }
            8 => {
                let mut off = 12;
                let txn = u64_at(body, 0)?;
                let node = u32_at(body, 8)?;
                let name = get_str(body, &mut off)?;
                let old = match body.get(off)? {
                    0 => {
                        off += 1;
                        None
                    }
                    1 => {
                        off += 1;
                        Some(get_str(body, &mut off)?)
                    }
                    _ => return None,
                };
                LogRecord::TxnSetAttr {
                    txn,
                    node,
                    name,
                    old,
                    new: get_str(body, &mut off)?,
                }
            }
            9 => LogRecord::TxnCommit {
                txn: u64_at(body, 0)?,
            },
            _ => return None,
        })
    }
}

struct LogState {
    /// Bytes appended but not yet written to the file.
    pending: Vec<u8>,
    /// LSN of the first pending byte (== bytes already durable).
    durable: Lsn,
    file: File,
}

/// The append/flush end of one `.wal` file.
pub struct LogManager {
    state: Mutex<LogState>,
    path: PathBuf,
}

impl LogManager {
    /// Create (or truncate) the log at `path`.
    pub fn create(path: &Path) -> io::Result<LogManager> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(LogManager {
            state: Mutex::new(LogState {
                pending: Vec::new(),
                durable: 0,
                file,
            }),
            path: path.to_path_buf(),
        })
    }

    /// Open an existing log for appending — the cold-open path. Every
    /// byte already in the file counts as durable.
    pub fn open(path: &Path) -> io::Result<LogManager> {
        let file = OpenOptions::new().read(true).append(true).open(path)?;
        let durable = file.metadata()?.len();
        Ok(LogManager {
            state: Mutex::new(LogState {
                pending: Vec::new(),
                durable,
                file,
            }),
            path: path.to_path_buf(),
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a record, returning the LSN just past it. The record is
    /// buffered; it reaches disk on the next [`LogManager::flush`]
    /// covering it.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let mut state = lock(&self.state);
        rec.encode(&mut state.pending);
        state.durable + state.pending.len() as u64
    }

    /// Make every log byte up to `lsn` durable. A no-op when already
    /// flushed that far.
    pub fn flush(&self, lsn: Lsn) -> io::Result<()> {
        let mut state = lock(&self.state);
        if lsn <= state.durable {
            return Ok(());
        }
        let take = (lsn - state.durable) as usize;
        let take = take.min(state.pending.len());
        // Flush whole pending prefix covering `lsn` (records are never
        // split: append pushed them atomically into the buffer).
        let chunk: Vec<u8> = state.pending.drain(..take).collect();
        state.file.write_all(&chunk)?;
        state.file.sync_data()?;
        state.durable += chunk.len() as u64;
        Ok(())
    }

    /// Flush everything appended so far.
    pub fn flush_all(&self) -> io::Result<()> {
        let lsn = {
            let state = lock(&self.state);
            state.durable + state.pending.len() as u64
        };
        self.flush(lsn)
    }

    /// Bytes made durable so far.
    pub fn flushed_lsn(&self) -> Lsn {
        lock(&self.state).durable
    }

    /// Total log bytes (durable + pending).
    pub fn size_bytes(&self) -> usize {
        let state = lock(&self.state);
        state.durable as usize + state.pending.len()
    }

    /// Read every record of the log at `path` — the open-time replay
    /// scan. Trailing garbage (a torn final record) yields an error.
    pub fn read_all(path: &Path) -> io::Result<Vec<LogRecord>> {
        let bytes = std::fs::read(path)?;
        let (records, valid) = parse_records(&bytes);
        if valid < bytes.len() {
            return Err(torn(path, valid));
        }
        Ok(records)
    }

    /// Read the longest valid record *prefix* of the log at `path`,
    /// returning the records plus the byte offset the prefix ends at —
    /// the crash-recovery scan. A torn tail (the crash hit mid-append)
    /// is expected and simply ends the prefix; recovery truncates the
    /// file back to the returned boundary before reopening the store.
    pub fn read_prefix(path: &Path) -> io::Result<(Vec<LogRecord>, u64)> {
        let bytes = std::fs::read(path)?;
        let (records, valid) = parse_records(&bytes);
        Ok((records, valid as u64))
    }
}

/// Decode records from the front of `bytes`; returns them plus the byte
/// length of the valid prefix (== `bytes.len()` when nothing is torn).
fn parse_records(bytes: &[u8]) -> (Vec<LogRecord>, usize) {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let Some(head) = bytes
            .get(off..off + 4)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
        else {
            break;
        };
        let len = u32::from_le_bytes(head) as usize;
        let Some(body) = bytes.get(off + 4..off + 4 + len) else {
            break;
        };
        let Some(rec) = LogRecord::decode(body) else {
            break;
        };
        records.push(rec);
        off += 4 + len;
    }
    (records, off)
}

fn torn(path: &Path, off: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("torn log record at byte {off} of {}", path.display()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        crate::paged::scratch_dir().join(format!("wal-{}-{name}.wal", std::process::id()))
    }

    #[test]
    fn append_flush_read_round_trip() {
        let path = tmp("roundtrip");
        let log = LogManager::create(&path).unwrap();
        let records = vec![
            LogRecord::BeginBulkLoad { nodes: 99 },
            LogRecord::FormatPage {
                page: 3,
                kind: PageKind::Text,
            },
            LogRecord::EndBulkLoad { pages: 7 },
            LogRecord::Checkpoint,
        ];
        let mut last = 0;
        for rec in &records {
            last = log.append(rec);
        }
        assert_eq!(log.flushed_lsn(), 0, "append alone is not durable");
        log.flush(last).unwrap();
        assert_eq!(log.flushed_lsn(), last);
        assert_eq!(LogManager::read_all(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_flush_is_a_prefix() {
        let path = tmp("prefix");
        let log = LogManager::create(&path).unwrap();
        let first = log.append(&LogRecord::BeginBulkLoad { nodes: 1 });
        let _second = log.append(&LogRecord::Checkpoint);
        log.flush(first).unwrap();
        // Only the first record is on disk.
        assert_eq!(
            LogManager::read_all(&path).unwrap(),
            vec![LogRecord::BeginBulkLoad { nodes: 1 }]
        );
        assert!(log.flushed_lsn() >= first);
        log.flush_all().unwrap();
        assert_eq!(LogManager::read_all(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn txn_records_round_trip() {
        let path = tmp("txn-roundtrip");
        let log = LogManager::create(&path).unwrap();
        let records = vec![
            LogRecord::TxnBegin { txn: 7 },
            LogRecord::TxnInsert {
                txn: 7,
                parent: 42,
                xml: "<bid><price>3.5</price></bid>".to_string(),
            },
            LogRecord::TxnDelete {
                txn: 7,
                node: 13,
                undo_xml: "<closed_auction/>".to_string(),
            },
            LogRecord::TxnSetText {
                txn: 7,
                node: 99,
                old: "old text".to_string(),
                new: "new text".to_string(),
            },
            LogRecord::TxnSetAttr {
                txn: 7,
                node: 5,
                name: "id".to_string(),
                old: None,
                new: "person999".to_string(),
            },
            LogRecord::TxnSetAttr {
                txn: 7,
                node: 5,
                name: "income".to_string(),
                old: Some("10.0".to_string()),
                new: "20.0".to_string(),
            },
            LogRecord::TxnCommit { txn: 7 },
        ];
        for rec in &records {
            log.append(rec);
        }
        log.flush_all().unwrap();
        assert_eq!(LogManager::read_all(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_prefix_tolerates_a_torn_tail() {
        let path = tmp("prefix-torn");
        let log = LogManager::create(&path).unwrap();
        let boundary = log.append(&LogRecord::TxnBegin { txn: 1 });
        log.append(&LogRecord::TxnCommit { txn: 1 });
        log.flush_all().unwrap();
        drop(log);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (records, valid) = LogManager::read_prefix(&path).unwrap();
        assert_eq!(records, vec![LogRecord::TxnBegin { txn: 1 }]);
        assert_eq!(valid, boundary, "prefix ends at the last whole record");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_log_is_rejected() {
        let path = tmp("torn");
        let log = LogManager::create(&path).unwrap();
        log.append(&LogRecord::BeginBulkLoad { nodes: 5 });
        log.append(&LogRecord::Checkpoint);
        log.flush_all().unwrap();
        drop(log);
        // Chop the final record in half.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let err = LogManager::read_all(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
