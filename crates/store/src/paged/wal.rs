//! The minimal append-only write-ahead log.
//!
//! The paged backend is read-mostly today (bulkload, then queries), but
//! the ROADMAP's structural-update path needs a durability substrate —
//! this module is it. The contract is the classic WAL discipline:
//!
//! 1. every page mutation is *described* by a [`LogRecord`] appended
//!    here first, and the resulting [`Lsn`] is stamped onto the page;
//! 2. before the buffer pool writes a dirty page to the data file, it
//!    calls [`LogManager::flush`] up to that page's LSN (**log before
//!    data** — see `BufferPool::write_back`);
//! 3. [`LogManager::read_all`] replays the records at open time, which
//!    today means one integrity check: a page file whose log lacks the
//!    closing [`LogRecord::EndBulkLoad`] was torn mid-load and is
//!    rejected rather than silently served.
//!
//! Records are length-framed (`len: u16, tag: u8, payload`); an LSN is
//! the byte offset just *past* a record, so `flush(lsn)` is "make the
//! first `lsn` log bytes durable".

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use super::page::{PageId, PageKind};

use crate::sync::lock;

/// A log sequence number: the byte offset just past a record.
pub type Lsn = u64;

/// One write-ahead log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A bulkload began (node count known up front from the parse).
    BeginBulkLoad {
        /// Total nodes the load will write.
        nodes: u32,
    },
    /// Page `page` was formatted as `kind` and filled by the load.
    FormatPage {
        /// The page number.
        page: PageId,
        /// What the page stores.
        kind: PageKind,
    },
    /// The bulkload committed: all pages flushed, header written.
    EndBulkLoad {
        /// Total pages in the finished file.
        pages: u32,
    },
    /// All dirty state up to this point is on disk.
    Checkpoint,
}

impl LogRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&0u16.to_le_bytes()); // len, patched below
        match self {
            LogRecord::BeginBulkLoad { nodes } => {
                out.push(0);
                out.extend_from_slice(&nodes.to_le_bytes());
            }
            LogRecord::FormatPage { page, kind } => {
                out.push(1);
                out.extend_from_slice(&page.to_le_bytes());
                out.push(*kind as u8);
            }
            LogRecord::EndBulkLoad { pages } => {
                out.push(2);
                out.extend_from_slice(&pages.to_le_bytes());
            }
            LogRecord::Checkpoint => out.push(3),
        }
        let len = (out.len() - start - 2) as u16;
        out[start..start + 2].copy_from_slice(&len.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Option<LogRecord> {
        let tag = *buf.first()?;
        let body = &buf[1..];
        let u32_at = |b: &[u8], off: usize| -> Option<u32> {
            Some(u32::from_le_bytes(b.get(off..off + 4)?.try_into().ok()?))
        };
        Some(match tag {
            0 => LogRecord::BeginBulkLoad {
                nodes: u32_at(body, 0)?,
            },
            1 => LogRecord::FormatPage {
                page: u32_at(body, 0)?,
                kind: PageKind::from_u8(*body.get(4)?)?,
            },
            2 => LogRecord::EndBulkLoad {
                pages: u32_at(body, 0)?,
            },
            3 => LogRecord::Checkpoint,
            _ => return None,
        })
    }
}

struct LogState {
    /// Bytes appended but not yet written to the file.
    pending: Vec<u8>,
    /// LSN of the first pending byte (== bytes already durable).
    durable: Lsn,
    file: File,
}

/// The append/flush end of one `.wal` file.
pub struct LogManager {
    state: Mutex<LogState>,
    path: PathBuf,
}

impl LogManager {
    /// Create (or truncate) the log at `path`.
    pub fn create(path: &Path) -> io::Result<LogManager> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(LogManager {
            state: Mutex::new(LogState {
                pending: Vec::new(),
                durable: 0,
                file,
            }),
            path: path.to_path_buf(),
        })
    }

    /// Open an existing log for appending — the cold-open path. Every
    /// byte already in the file counts as durable.
    pub fn open(path: &Path) -> io::Result<LogManager> {
        let file = OpenOptions::new().read(true).append(true).open(path)?;
        let durable = file.metadata()?.len();
        Ok(LogManager {
            state: Mutex::new(LogState {
                pending: Vec::new(),
                durable,
                file,
            }),
            path: path.to_path_buf(),
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a record, returning the LSN just past it. The record is
    /// buffered; it reaches disk on the next [`LogManager::flush`]
    /// covering it.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let mut state = lock(&self.state);
        rec.encode(&mut state.pending);
        state.durable + state.pending.len() as u64
    }

    /// Make every log byte up to `lsn` durable. A no-op when already
    /// flushed that far.
    pub fn flush(&self, lsn: Lsn) -> io::Result<()> {
        let mut state = lock(&self.state);
        if lsn <= state.durable {
            return Ok(());
        }
        let take = (lsn - state.durable) as usize;
        let take = take.min(state.pending.len());
        // Flush whole pending prefix covering `lsn` (records are never
        // split: append pushed them atomically into the buffer).
        let chunk: Vec<u8> = state.pending.drain(..take).collect();
        state.file.write_all(&chunk)?;
        state.file.sync_data()?;
        state.durable += chunk.len() as u64;
        Ok(())
    }

    /// Flush everything appended so far.
    pub fn flush_all(&self) -> io::Result<()> {
        let lsn = {
            let state = lock(&self.state);
            state.durable + state.pending.len() as u64
        };
        self.flush(lsn)
    }

    /// Bytes made durable so far.
    pub fn flushed_lsn(&self) -> Lsn {
        lock(&self.state).durable
    }

    /// Total log bytes (durable + pending).
    pub fn size_bytes(&self) -> usize {
        let state = lock(&self.state);
        state.durable as usize + state.pending.len()
    }

    /// Read every record of the log at `path` — the open-time replay
    /// scan. Trailing garbage (a torn final record) yields an error.
    pub fn read_all(path: &Path) -> io::Result<Vec<LogRecord>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut off = 0usize;
        while off < bytes.len() {
            if off + 2 > bytes.len() {
                return Err(torn(path, off));
            }
            let len = u16::from_le_bytes([bytes[off], bytes[off + 1]]) as usize;
            let body = bytes
                .get(off + 2..off + 2 + len)
                .ok_or_else(|| torn(path, off))?;
            records.push(LogRecord::decode(body).ok_or_else(|| torn(path, off))?);
            off += 2 + len;
        }
        Ok(records)
    }
}

fn torn(path: &Path, off: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("torn log record at byte {off} of {}", path.display()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        crate::paged::scratch_dir().join(format!("wal-{}-{name}.wal", std::process::id()))
    }

    #[test]
    fn append_flush_read_round_trip() {
        let path = tmp("roundtrip");
        let log = LogManager::create(&path).unwrap();
        let records = vec![
            LogRecord::BeginBulkLoad { nodes: 99 },
            LogRecord::FormatPage {
                page: 3,
                kind: PageKind::Text,
            },
            LogRecord::EndBulkLoad { pages: 7 },
            LogRecord::Checkpoint,
        ];
        let mut last = 0;
        for rec in &records {
            last = log.append(rec);
        }
        assert_eq!(log.flushed_lsn(), 0, "append alone is not durable");
        log.flush(last).unwrap();
        assert_eq!(log.flushed_lsn(), last);
        assert_eq!(LogManager::read_all(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_flush_is_a_prefix() {
        let path = tmp("prefix");
        let log = LogManager::create(&path).unwrap();
        let first = log.append(&LogRecord::BeginBulkLoad { nodes: 1 });
        let _second = log.append(&LogRecord::Checkpoint);
        log.flush(first).unwrap();
        // Only the first record is on disk.
        assert_eq!(
            LogManager::read_all(&path).unwrap(),
            vec![LogRecord::BeginBulkLoad { nodes: 1 }]
        );
        assert!(log.flushed_lsn() >= first);
        log.flush_all().unwrap();
        assert_eq!(LogManager::read_all(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_log_is_rejected() {
        let path = tmp("torn");
        let log = LogManager::create(&path).unwrap();
        log.append(&LogRecord::BeginBulkLoad { nodes: 5 });
        log.append(&LogRecord::Checkpoint);
        log.flush_all().unwrap();
        drop(log);
        // Chop the final record in half.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let err = LogManager::read_all(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
