//! Sharded union view: one logical document over N physical shards.
//!
//! [`ShardedStore`] presents a set of per-shard [`XmlStore`]s — shard 0
//! holding the shared `regions`/`categories`/`catgraph` head, shards
//! `1..=N` holding contiguous entity ranges (see
//! `xmark_gen::generate_sharded`) — as a single logical `<site>` document
//! implementing the full [`XmlStore`] contract. Every backend works as
//! the shard type, including the disk-resident paged backend H, whose
//! per-shard page files open cold without re-parsing.
//!
//! **Global ids are logical pre-order positions.** The union assigns one
//! dense id space: `0` is the fused `site` root, each of the six section
//! elements is fused into one virtual node, and each shard's section
//! contents map through a constant per-segment offset into a contiguous
//! global range — section by section, shard by shard, in document order.
//! Consequences that fall out for free:
//!
//! * document order (`<<`, [`XmlStore::doc_order_key`]) is plain id order,
//! * axis cursors over fused nodes are **ordered merges**: concatenating
//!   the shards' cursors in shard order *is* the document-order merge,
//! * [`XmlStore::count_descendants_named`] on fused nodes is a
//!   **partial-aggregate combine**: per-shard counts summed, each answered
//!   by whatever summary/extent arithmetic the shard backend has,
//! * the union owns its own [`IndexManager`], so id lookups, element
//!   postings and the query layer's shared join build sides ("broadcast"
//!   build sides — built once against the whole view, probed by every
//!   shard-local task) work unchanged.
//!
//! The per-shard *section elements* (`<people>` in shard 2, say) are
//! shadowed: they are never surfaced as nodes of the union; their fused
//! counterparts stand in for them. Navigation below a section's children
//! is pure delegation plus a constant id offset.

use std::fmt;

use crate::axis::{AttrIter, ChildIter, ChildrenNamed, DescendantsNamed};
use crate::index::IndexManager;
use crate::traits::{Node, PlannerCaps, PositionSpec, StepEstimate, SystemId, XmlStore};

/// One contiguous run of global ids owned by a `(shard, section)` pair:
/// the descendants of that shard's section element, local pre-order,
/// mapped through a constant offset.
#[derive(Debug, Clone, Copy)]
struct Seg {
    /// First global id of the run.
    gstart: u32,
    /// One past the last global id.
    gend: u32,
    /// Owning shard (0 = global head shard).
    shard: u32,
    /// Local id of the first content node (`lsec + 1`).
    lstart: u32,
    /// Local id of the shard's shadowed section element.
    lsec: u32,
    /// Section index (0..6).
    section: u32,
}

impl Seg {
    /// The constant local→global offset of this segment.
    #[inline]
    fn to_global(self, local: Node) -> Node {
        debug_assert!(local.0 >= self.lstart && local.0 - self.lstart < self.gend - self.gstart);
        Node(self.gstart + (local.0 - self.lstart))
    }
}

/// Where a global id lands in the union.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// The fused `site` root (global id 0).
    Root,
    /// The fused section element with this section index.
    Section(usize),
    /// Inside segment `.0`, at this local id of the owning shard.
    In(usize, Node),
}

/// Errors assembling a union view from shard stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Fewer than two stores (global head + at least one entity shard).
    TooFewShards(usize),
    /// A shard's root/section skeleton differs from shard 0's.
    SkeletonMismatch(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::TooFewShards(n) => {
                write!(f, "sharded store needs >= 2 shard documents, got {n}")
            }
            ShardError::SkeletonMismatch(why) => write!(f, "shard skeleton mismatch: {why}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// The sharded union view. See the module docs for the id-space design.
pub struct ShardedStore {
    /// `[global head, entity shard 0, entity shard 1, …]`.
    shards: Vec<Box<dyn XmlStore>>,
    /// Root tag (always `site` for XMark documents).
    root_tag: String,
    /// Section tags in document order.
    sections: Vec<String>,
    /// Global id of each fused section element (ascending).
    section_gid: Vec<u32>,
    /// Content segments, ascending by `gstart`.
    segs: Vec<Seg>,
    /// Per `(shard, section)`: local id of the shadowed section element.
    sec_local: Vec<Vec<u32>>,
    /// Per `(shard, section)`: index into `segs`, `None` when empty.
    seg_of: Vec<Vec<Option<usize>>>,
    /// Total nodes in the union (fused + content).
    node_count: usize,
    /// The union's own persistent index subsystem (global-id space).
    indexes: IndexManager,
}

impl ShardedStore {
    /// Assemble a union view over already-loaded shard stores:
    /// `shards[0]` is the global head, `shards[1..]` the entity shards.
    /// Every shard must present the same root tag and section skeleton.
    pub fn from_shards(shards: Vec<Box<dyn XmlStore>>) -> Result<ShardedStore, ShardError> {
        if shards.len() < 2 {
            return Err(ShardError::TooFewShards(shards.len()));
        }
        let root_tag = shards[0]
            .tag_of(shards[0].root())
            .ok_or_else(|| ShardError::SkeletonMismatch("shard 0 root is not an element".into()))?
            .to_string();
        let sections: Vec<String> = shards[0]
            .children_iter(shards[0].root())
            .filter_map(|c| shards[0].tag_of(c).map(str::to_string))
            .collect();
        if sections.is_empty() {
            return Err(ShardError::SkeletonMismatch(
                "shard 0 root has no section elements".into(),
            ));
        }

        // Per shard: section element local ids and content ranges. Stores
        // number nodes in document pre-order, so the descendants of
        // section `s` occupy the local ids strictly between section `s`'s
        // element and the next section element (or the end of the store).
        let mut sec_local: Vec<Vec<u32>> = Vec::with_capacity(shards.len());
        let mut ranges: Vec<Vec<(u32, u32)>> = Vec::with_capacity(shards.len());
        for (j, shard) in shards.iter().enumerate() {
            if shard.tag_of(shard.root()) != Some(root_tag.as_str()) {
                return Err(ShardError::SkeletonMismatch(format!(
                    "shard {j} root tag differs from {root_tag:?}"
                )));
            }
            let secs: Vec<Node> = shard.children_iter(shard.root()).collect();
            let tags: Vec<&str> = secs.iter().filter_map(|&c| shard.tag_of(c)).collect();
            if tags.len() != sections.len() || tags.iter().zip(&sections).any(|(a, b)| *a != b) {
                return Err(ShardError::SkeletonMismatch(format!(
                    "shard {j} sections {tags:?} != {:?}",
                    sections
                )));
            }
            let mut locals = Vec::with_capacity(secs.len());
            let mut spans = Vec::with_capacity(secs.len());
            for (s, &sec) in secs.iter().enumerate() {
                let start = sec.0 + 1;
                let end = if s + 1 < secs.len() {
                    secs[s + 1].0
                } else {
                    shard.node_count() as u32
                };
                debug_assert!(end >= start, "pre-order section span inverted");
                locals.push(sec.0);
                spans.push((start, end));
            }
            sec_local.push(locals);
            ranges.push(spans);
        }

        // Assemble the dense global pre-order id space.
        let mut section_gid = Vec::with_capacity(sections.len());
        let mut segs = Vec::new();
        let mut seg_of = vec![vec![None; sections.len()]; shards.len()];
        let mut next: u32 = 1; // 0 is the fused root
        for s in 0..sections.len() {
            section_gid.push(next);
            next += 1;
            for (j, spans) in ranges.iter().enumerate() {
                let (start, end) = spans[s];
                if end > start {
                    seg_of[j][s] = Some(segs.len());
                    segs.push(Seg {
                        gstart: next,
                        gend: next + (end - start),
                        shard: j as u32,
                        lstart: start,
                        lsec: sec_local[j][s],
                        section: s as u32,
                    });
                    next += end - start;
                }
            }
        }

        Ok(ShardedStore {
            shards,
            root_tag,
            sections,
            section_gid,
            segs,
            sec_local,
            seg_of,
            node_count: next as usize,
            indexes: IndexManager::new(),
        })
    }

    /// Bulkload `docs` (the output of `xmark_gen::generate_sharded`:
    /// global head first) into `system`-backed shards and assemble the
    /// union view.
    ///
    /// # Errors
    /// Propagates XML parse errors; fails on mismatched shard skeletons.
    pub fn load(
        system: SystemId,
        docs: &[impl AsRef<str>],
    ) -> Result<ShardedStore, Box<dyn std::error::Error>> {
        let mut shards = Vec::with_capacity(docs.len());
        for doc in docs {
            shards.push(crate::build_store(system, doc.as_ref())?);
        }
        Ok(ShardedStore::from_shards(shards)?)
    }

    /// Number of entity shards (excluding the global head shard).
    pub fn entity_shards(&self) -> usize {
        self.shards.len() - 1
    }

    /// The physical shard stores (`[global head, entity shards…]`).
    pub fn shard_stores(&self) -> impl Iterator<Item = &dyn XmlStore> {
        self.shards.iter().map(|s| s.as_ref())
    }

    /// Map a node id local to shard `j` (`0` = global head) into the
    /// union's global id space: the shard's root maps to the fused root,
    /// its section elements to the fused section ids, owned content
    /// through the segment offset. `None` for out-of-range ids or
    /// unknown shards.
    pub fn global_of(&self, j: usize, local: Node) -> Option<Node> {
        let shard = self.shards.get(j)?;
        if local == shard.root() {
            return Some(Node(0));
        }
        if let Ok(s) = self.sec_local[j].binary_search(&local.0) {
            return Some(Node(self.section_gid[s]));
        }
        for k in self.seg_of[j].iter().flatten() {
            let seg = &self.segs[*k];
            if local.0 >= seg.lstart && local.0 - seg.lstart < seg.gend - seg.gstart {
                return Some(seg.to_global(local));
            }
        }
        None
    }

    /// Resolve a global id.
    fn locate(&self, n: Node) -> Loc {
        if n.0 == 0 {
            return Loc::Root;
        }
        // Segments are sorted by gstart; the candidate is the last one
        // starting at or before `n`.
        let idx = self.segs.partition_point(|s| s.gstart <= n.0);
        if idx > 0 {
            let seg = &self.segs[idx - 1];
            if n.0 < seg.gend {
                return Loc::In(idx - 1, Node(seg.lstart + (n.0 - seg.gstart)));
            }
        }
        match self.section_gid.binary_search(&n.0) {
            Ok(s) => Loc::Section(s),
            Err(_) => panic!("global id {} is not a node of the sharded view", n.0),
        }
    }

    /// The shard store backing segment `k`.
    #[inline]
    fn seg_store(&self, k: usize) -> &dyn XmlStore {
        self.shards[self.segs[k].shard as usize].as_ref()
    }

    /// Children of the fused section `s`, merged across shards in shard
    /// (= document) order.
    fn section_children<F>(&self, s: usize, mut per_shard: F) -> Vec<Node>
    where
        F: FnMut(&dyn XmlStore, Node) -> Vec<Node>,
    {
        let mut out = Vec::new();
        for (j, shard) in self.shards.iter().enumerate() {
            let Some(k) = self.seg_of[j][s] else { continue };
            let seg = self.segs[k];
            let locals = per_shard(shard.as_ref(), Node(self.sec_local[j][s]));
            out.extend(locals.into_iter().map(|l| seg.to_global(l)));
        }
        out
    }
}

impl XmlStore for ShardedStore {
    fn system(&self) -> SystemId {
        // The union inherits the architecture of its shards: a "sharded
        // deployment of backend X" reports X.
        self.shards[self.shards.len() - 1].system()
    }

    fn root(&self) -> Node {
        Node(0)
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.size_bytes()).sum::<usize>() + self.indexes.size_bytes()
    }

    fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    fn disk_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.disk_bytes()).sum()
    }

    fn paged_stats(&self) -> Option<crate::paged::PoolStats> {
        // Sum pool counters across paged shards; None when no shard is
        // disk-resident.
        let mut acc: Option<crate::paged::PoolStats> = None;
        for s in &self.shards {
            if let Some(stats) = s.paged_stats() {
                acc = Some(match acc {
                    None => stats,
                    Some(a) => a.merged(&stats),
                });
            }
        }
        acc
    }

    fn content_epoch(&self) -> u64 {
        self.shards.iter().map(|s| s.content_epoch()).sum()
    }

    fn shard_count(&self) -> usize {
        self.entity_shards()
    }

    fn shard_of(&self, n: Node) -> Option<usize> {
        match self.locate(n) {
            Loc::In(k, _) => {
                let shard = self.segs[k].shard as usize;
                // Shard 0 is the shared global head — not an entity shard.
                shard.checked_sub(1)
            }
            _ => None,
        }
    }

    fn shard_part_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_part(&self, part: usize) -> Option<&dyn XmlStore> {
        self.shards.get(part).map(|s| s.as_ref())
    }

    fn shard_part_global(&self, part: usize, local: Node) -> Option<Node> {
        self.global_of(part, local)
    }

    fn tag_of(&self, n: Node) -> Option<&str> {
        match self.locate(n) {
            Loc::Root => Some(&self.root_tag),
            Loc::Section(s) => Some(&self.sections[s]),
            Loc::In(k, l) => self.seg_store(k).tag_of(l),
        }
    }

    fn parent(&self, n: Node) -> Option<Node> {
        match self.locate(n) {
            Loc::Root => None,
            Loc::Section(_) => Some(Node(0)),
            Loc::In(k, l) => {
                let seg = self.segs[k];
                let p = self.seg_store(k).parent(l)?;
                if p.0 == seg.lsec {
                    Some(Node(self.section_gid[seg.section as usize]))
                } else {
                    Some(seg.to_global(p))
                }
            }
        }
    }

    fn text(&self, n: Node) -> Option<&str> {
        match self.locate(n) {
            Loc::In(k, l) => self.seg_store(k).text(l),
            _ => None,
        }
    }

    fn is_text_node(&self, n: Node) -> bool {
        match self.locate(n) {
            Loc::In(k, l) => self.seg_store(k).is_text_node(l),
            _ => false,
        }
    }

    fn attribute(&self, n: Node, name: &str) -> Option<String> {
        match self.locate(n) {
            Loc::In(k, l) => self.seg_store(k).attribute(l, name),
            _ => None,
        }
    }

    fn children_iter(&self, n: Node) -> ChildIter<'_> {
        match self.locate(n) {
            Loc::Root => ChildIter::from_vec(self.section_gid.iter().map(|&g| Node(g)).collect()),
            Loc::Section(s) => ChildIter::from_vec(
                self.section_children(s, |shard, sec| shard.children_iter(sec).collect()),
            ),
            Loc::In(k, l) => {
                let seg = self.segs[k];
                ChildIter::from_vec(
                    self.seg_store(k)
                        .children_iter(l)
                        .map(|c| seg.to_global(c))
                        .collect(),
                )
            }
        }
    }

    fn attributes_iter(&self, n: Node) -> AttrIter<'_> {
        match self.locate(n) {
            Loc::In(k, l) => self.seg_store(k).attributes_iter(l),
            _ => AttrIter::Empty,
        }
    }

    fn children_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> ChildrenNamed<'a> {
        match self.locate(n) {
            Loc::Root => ChildrenNamed::from_vec(
                self.sections
                    .iter()
                    .zip(&self.section_gid)
                    .filter(|(t, _)| t.as_str() == tag)
                    .map(|(_, &g)| Node(g))
                    .collect(),
            ),
            Loc::Section(s) => ChildrenNamed::from_vec(self.section_children(s, |shard, sec| {
                shard.children_named_iter(sec, tag).collect()
            })),
            Loc::In(k, l) => {
                let seg = self.segs[k];
                ChildrenNamed::from_vec(
                    self.seg_store(k)
                        .children_named_iter(l, tag)
                        .map(|c| seg.to_global(c))
                        .collect(),
                )
            }
        }
    }

    fn descendants_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> DescendantsNamed<'a> {
        match self.locate(n) {
            Loc::Root => {
                // Document-order merge: per section, the fused section
                // element (when its tag matches) precedes its contents;
                // sections ascend; within a section, shard order is
                // global-id order.
                let mut out = Vec::new();
                for s in 0..self.sections.len() {
                    if self.sections[s] == tag {
                        out.push(Node(self.section_gid[s]));
                    }
                    out.extend(self.section_children(s, |shard, sec| {
                        shard.descendants_named_iter(sec, tag).collect()
                    }));
                }
                DescendantsNamed::from_vec(out)
            }
            Loc::Section(s) => {
                DescendantsNamed::from_vec(self.section_children(s, |shard, sec| {
                    shard.descendants_named_iter(sec, tag).collect()
                }))
            }
            Loc::In(k, l) => {
                let seg = self.segs[k];
                DescendantsNamed::from_vec(
                    self.seg_store(k)
                        .descendants_named_iter(l, tag)
                        .map(|c| seg.to_global(c))
                        .collect(),
                )
            }
        }
    }

    fn count_descendants_named(&self, n: Node, tag: &str) -> usize {
        // The partial-aggregate combine: fused nodes sum per-shard counts,
        // each answered by the shard backend's native count path (summary
        // arithmetic on D/E, extent scans elsewhere).
        match self.locate(n) {
            Loc::Root => {
                let mut total = 0;
                for s in 0..self.sections.len() {
                    if self.sections[s] == tag {
                        total += 1;
                    }
                    total += self.count_descendants_named(Node(self.section_gid[s]), tag);
                }
                total
            }
            Loc::Section(s) => self
                .shards
                .iter()
                .enumerate()
                .filter(|(j, _)| self.seg_of[*j][s].is_some())
                .map(|(j, shard)| shard.count_descendants_named(Node(self.sec_local[j][s]), tag))
                .sum(),
            Loc::In(k, l) => self.seg_store(k).count_descendants_named(l, tag),
        }
    }

    fn typed_child_value(&self, n: Node, tag: &str) -> Option<Option<String>> {
        match self.locate(n) {
            Loc::In(k, l) => self.seg_store(k).typed_child_value(l, tag),
            _ => None,
        }
    }

    fn positional_child(&self, n: Node, tag: &str, pos: PositionSpec) -> Option<Option<Node>> {
        match self.locate(n) {
            Loc::In(k, l) => {
                let seg = self.segs[k];
                self.seg_store(k)
                    .positional_child(l, tag, pos)
                    .map(|found| found.map(|c| seg.to_global(c)))
            }
            // Fused nodes: report "unsupported" so the executor falls back
            // to the generic merged-cursor path.
            _ => None,
        }
    }

    fn string_value_into(&self, n: Node, out: &mut String) {
        match self.locate(n) {
            Loc::In(k, l) => self.seg_store(k).string_value_into(l, out),
            _ => {
                for child in self.children_iter(n) {
                    self.string_value_into(child, out);
                }
            }
        }
    }

    fn serialize_node_to(&self, n: Node, out: &mut dyn fmt::Write) -> fmt::Result {
        match self.locate(n) {
            Loc::In(k, l) => self.seg_store(k).serialize_node_to(l, out),
            loc => {
                // Fused nodes (root, sections) carry no attributes; their
                // children serialize through the owning shards.
                let tag = match loc {
                    Loc::Root => &self.root_tag,
                    Loc::Section(s) => &self.sections[s],
                    Loc::In(..) => unreachable!(),
                };
                let mut children = self.children_iter(n);
                match children.next() {
                    None => write!(out, "<{tag}/>"),
                    Some(first) => {
                        write!(out, "<{tag}>")?;
                        self.serialize_node_to(first, out)?;
                        for child in children {
                            self.serialize_node_to(child, out)?;
                        }
                        write!(out, "</{tag}>")
                    }
                }
            }
        }
    }

    fn begin_compile(&self) {
        for s in &self.shards {
            s.begin_compile();
        }
    }

    fn compile_step(&self, tag: &str) -> usize {
        // Scatter the catalog touch: every shard resolves its own extent
        // descriptor, the union sums the cardinalities.
        self.shards.iter().map(|s| s.compile_step(tag)).sum()
    }

    fn metadata_accesses(&self) -> u64 {
        self.shards.iter().map(|s| s.metadata_accesses()).sum()
    }

    fn planner_caps(&self) -> PlannerCaps {
        // The union inherits the architecture of its shards: delegated
        // access paths (inlined values, positional indexes) reach the
        // shard backends below the fused level, and the union's own
        // IndexManager serves the shared-index capabilities exactly like
        // a monolithic store's would.
        self.shards[self.shards.len() - 1].planner_caps()
    }

    fn estimate_step(&self, tag: &str) -> StepEstimate {
        let mut rows = 0u64;
        let mut exact = true;
        for s in &self.shards {
            let est = s.estimate_step(tag);
            rows += est.rows;
            exact &= est.exact;
        }
        StepEstimate { rows, exact }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeStore;

    const GLOBAL: &str = "<site><regions><africa><item id=\"item0\"><name>i0</name></item></africa></regions><categories><category id=\"cat0\"/></categories><catgraph/><people/><open_auctions/><closed_auctions/></site>";
    const SHARD0: &str = "<site><regions/><categories/><catgraph/><people><person id=\"person0\"><name>Ada</name></person></people><open_auctions><open_auction id=\"open0\"/></open_auctions><closed_auctions/></site>";
    const SHARD1: &str = "<site><regions/><categories/><catgraph/><people><person id=\"person1\"><name>Bob</name></person><person id=\"person2\"><name>Cyd</name></person></people><open_auctions/><closed_auctions><closed_auction/></closed_auctions></site>";
    const WHOLE: &str = "<site><regions><africa><item id=\"item0\"><name>i0</name></item></africa></regions><categories><category id=\"cat0\"/></categories><catgraph/><people><person id=\"person0\"><name>Ada</name></person><person id=\"person1\"><name>Bob</name></person><person id=\"person2\"><name>Cyd</name></person></people><open_auctions><open_auction id=\"open0\"/></open_auctions><closed_auctions><closed_auction/></closed_auctions></site>";

    fn union() -> ShardedStore {
        ShardedStore::load(SystemId::A, &[GLOBAL, SHARD0, SHARD1]).unwrap()
    }

    #[test]
    fn union_matches_monolithic_node_count() {
        let u = union();
        let whole = EdgeStore::load(WHOLE).unwrap();
        assert_eq!(u.node_count(), whole.node_count());
        assert_eq!(u.shard_count(), 2);
    }

    #[test]
    fn root_children_are_the_fused_sections() {
        let u = union();
        let tags: Vec<String> = u
            .children_iter(u.root())
            .map(|c| u.tag_of(c).unwrap().to_string())
            .collect();
        assert_eq!(
            tags,
            [
                "regions",
                "categories",
                "catgraph",
                "people",
                "open_auctions",
                "closed_auctions"
            ]
        );
    }

    #[test]
    fn section_children_merge_across_shards_in_order() {
        let u = union();
        let people = u.children_named(u.root(), "people")[0];
        let ids: Vec<String> = u
            .children_iter(people)
            .map(|p| u.attribute(p, "id").unwrap())
            .collect();
        assert_eq!(ids, ["person0", "person1", "person2"]);
        // Global ids ascend (document order = id order).
        let nodes = u.children(people);
        assert!(nodes.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn descendants_merge_and_count_sums() {
        let u = union();
        let names = u.descendants_named(u.root(), "name");
        assert_eq!(names.len(), 4); // item name + 3 person names
        assert_eq!(u.count_descendants_named(u.root(), "person"), 3);
        assert_eq!(u.count_descendants_named(u.root(), "people"), 1);
    }

    #[test]
    fn parent_links_cross_the_fused_boundary() {
        let u = union();
        let person = u.descendants_named(u.root(), "person")[0];
        let people = u.parent(person).unwrap();
        assert_eq!(u.tag_of(people), Some("people"));
        assert_eq!(u.parent(people), Some(u.root()));
        assert_eq!(u.parent(u.root()), None);
        // Below the entity level, delegation with offsets.
        let name = u.children_named(person, "name")[0];
        assert_eq!(u.parent(name), Some(person));
        assert_eq!(u.string_value(name), "Ada");
    }

    #[test]
    fn global_of_inverts_locate_for_every_node() {
        let u = union();
        assert_eq!(u.shard_part_count(), 3);
        for g in 0..u.node_count() as u32 {
            let n = Node(g);
            match u.locate(n) {
                Loc::Root => {
                    // Every part's root fuses into global id 0.
                    for j in 0..u.shards.len() {
                        assert_eq!(u.global_of(j, u.shards[j].root()), Some(Node(0)));
                    }
                }
                Loc::Section(s) => {
                    for j in 0..u.shards.len() {
                        assert_eq!(u.shard_part_global(j, Node(u.sec_local[j][s])), Some(n));
                    }
                }
                Loc::In(k, l) => {
                    let j = u.segs[k].shard as usize;
                    assert_eq!(u.shard_part_global(j, l), Some(n));
                }
            }
        }
        // Out-of-range locals and parts map to nothing.
        assert_eq!(u.global_of(0, Node(u32::MAX)), None);
        assert_eq!(u.global_of(17, Node(0)), None);
        // Monolithic stores expose no parts.
        let whole = EdgeStore::load(WHOLE).unwrap();
        assert_eq!(whole.shard_part_count(), 0);
        assert!(whole.shard_part(0).is_none());
        assert_eq!(whole.shard_part_global(0, Node(0)), None);
    }

    #[test]
    fn shard_of_reports_entity_owners() {
        let u = union();
        let people = u.descendants_named(u.root(), "person");
        assert_eq!(u.shard_of(people[0]), Some(0));
        assert_eq!(u.shard_of(people[1]), Some(1));
        assert_eq!(u.shard_of(people[2]), Some(1));
        let item = u.descendants_named(u.root(), "item")[0];
        assert_eq!(u.shard_of(item), None); // global head
        assert_eq!(u.shard_of(u.root()), None);
    }

    #[test]
    fn serialization_matches_the_monolithic_document() {
        let u = union();
        let whole = EdgeStore::load(WHOLE).unwrap();
        let mut a = String::new();
        u.serialize_node(u.root(), &mut a);
        let mut b = String::new();
        whole.serialize_node(whole.root(), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn lookup_id_spans_all_shards() {
        let u = union();
        let p2 = u.lookup_id("person2").unwrap().unwrap();
        assert_eq!(u.attribute(p2, "id").as_deref(), Some("person2"));
        let item = u.lookup_id("item0").unwrap().unwrap();
        assert_eq!(u.tag_of(item), Some("item"));
        assert_eq!(u.lookup_id("nope").unwrap(), None);
    }

    #[test]
    fn estimates_sum_across_shards() {
        let u = union();
        let est = u.estimate_step("person");
        assert_eq!(est.rows, 3);
        assert!(est.exact);
    }

    #[test]
    fn mismatched_skeletons_are_rejected() {
        let bad = "<site><regions/></site>";
        assert!(ShardedStore::load(SystemId::A, &[GLOBAL, bad]).is_err());
        assert!(ShardedStore::load(SystemId::A, &[GLOBAL]).is_err());
    }
}
