//! System D — main-memory columnar tree with a structural summary.
//!
//! §7: "System D keeps a detailed structural summary of the database and
//! can exploit it to optimize traversal-intensive queries; this actually
//! makes Q6 and Q7 surprisingly fast … The problem that Q7 actually looks
//! for non-existing paths is efficiently solved by exploiting the
//! structural summary."
//!
//! The summary is a DataGuide: one summary node per distinct root-to-node
//! tag path, each holding the *extent* (all instance nodes on that path,
//! sorted in document order). Because instance ids are pre-order, the
//! descendants of any node form a contiguous id interval, so
//! `descendants_named` is a walk over the (tiny) summary subtree plus one
//! binary-searched range per extent — and counting requires no node access
//! at all.

use std::collections::HashMap;

use xmark_xml::{Document, NodeId};

use crate::axis::{AttrIter, ChildIter, ChildrenNamed, DescendantsNamed};
use crate::index::IndexManager;
use crate::loader::{parent_array, subtree_ends, NONE};
use crate::traits::{Node, PlannerCaps, SystemId, XmlStore};

/// Streaming child cursor over the columnar `next_sibling` chain —
/// pointer-chasing, no allocation.
pub struct LinkedChildren<'a> {
    next_sibling: &'a [u32],
    cur: u32,
}

impl Iterator for LinkedChildren<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        if self.cur == NONE {
            return None;
        }
        let n = Node(self.cur);
        self.cur = self.next_sibling[self.cur as usize];
        Some(n)
    }
}

/// [`LinkedChildren`] plus a summary-tag test: each child's tag is read
/// off its summary (DataGuide) node, so the test is one array load plus a
/// string compare.
pub struct LinkedChildrenNamed<'a> {
    store: &'a SummaryStore,
    cur: u32,
    tag: &'a str,
}

impl Iterator for LinkedChildrenNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        while self.cur != NONE {
            let id = self.cur;
            self.cur = self.store.next_sibling[id as usize];
            let path = self.store.path_id[id as usize];
            if path != NONE && self.store.summary[path as usize].tag == self.tag {
                return Some(Node(id));
            }
        }
        None
    }
}

/// K-way merge over the extent slices of the summary nodes matching a
/// descendant step — System D's native plan when the tag occurs on more
/// than one distinct path. The cursor holds only the (few) slice heads;
/// nodes stream out in document order because each extent is sorted.
pub struct SummaryDescendantsNamed<'a> {
    extents: Vec<&'a [u32]>,
}

impl Iterator for SummaryDescendantsNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        let mut best: Option<usize> = None;
        for (i, slice) in self.extents.iter().enumerate() {
            if let Some(&head) = slice.first() {
                if best.is_none_or(|b| head < self.extents[b][0]) {
                    best = Some(i);
                }
            }
        }
        let i = best?;
        let (&head, rest) = self.extents[i].split_first().expect("non-empty head");
        self.extents[i] = rest;
        Some(Node(head))
    }
}

/// One node of the structural summary (DataGuide).
#[derive(Debug)]
struct SummaryNode {
    /// Tag of this path step (text nodes do not get summary nodes).
    tag: String,
    /// Child summary nodes by tag.
    children: HashMap<String, u32>,
    /// Instance nodes on this path, ascending (= document order).
    extent: Vec<u32>,
}

/// The System D store.
pub struct SummaryStore {
    // Columnar tree skeleton.
    parent: Vec<u32>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    subtree_end: Vec<u32>,
    /// Summary node per instance node; `NONE` for text nodes.
    path_id: Vec<u32>,
    /// Text content per node (empty for elements; XMark text is dense
    /// enough that an Option-free representation is simplest).
    text: Vec<Box<str>>,
    is_text: Vec<bool>,
    attrs: HashMap<u32, Vec<(String, String)>>,
    summary: Vec<SummaryNode>,
    root_summary: u32,
    root: u32,
    indexes: IndexManager,
}

impl SummaryStore {
    /// Bulkload: parse, build the columnar skeleton, the structural
    /// summary, and the ID index.
    pub fn load(xml: &str) -> Result<Self, xmark_xml::Error> {
        let doc = xmark_xml::parse_document(xml)?;
        Ok(Self::from_document(&doc))
    }

    /// Build from an already-parsed document.
    pub fn from_document(doc: &Document) -> Self {
        let n = doc.node_count();
        let parent = parent_array(doc);
        let subtree_end = subtree_ends(doc);
        let mut first_child = vec![NONE; n];
        let mut next_sibling = vec![NONE; n];
        let mut text: Vec<Box<str>> = vec![Box::from(""); n];
        let mut is_text = vec![false; n];
        let mut attrs: HashMap<u32, Vec<(String, String)>> = HashMap::new();

        let mut summary: Vec<SummaryNode> = Vec::new();
        let mut path_id = vec![NONE; n];

        let root = doc.root_element();
        summary.push(SummaryNode {
            tag: doc.tag_name(root).to_string(),
            children: HashMap::new(),
            extent: vec![root.0],
        });
        path_id[root.index()] = 0;

        for id in 0..n as u32 {
            let node = NodeId(id);
            first_child[id as usize] = doc.first_child(node).map_or(NONE, |c| c.0);
            next_sibling[id as usize] = doc.next_sibling(node).map_or(NONE, |s| s.0);
            if let Some(t) = doc.text(node) {
                text[id as usize] = Box::from(t);
                is_text[id as usize] = true;
                continue;
            }
            let node_attrs: Vec<(String, String)> = doc
                .attributes(node)
                .iter()
                .map(|(sym, v)| (doc.interner().resolve(*sym).to_string(), v.clone()))
                .collect();
            if !node_attrs.is_empty() {
                attrs.insert(id, node_attrs);
            }
            // Assign the summary node (parent processed first: pre-order).
            if id != root.0 {
                let p = parent[id as usize];
                let parent_path = path_id[p as usize];
                debug_assert_ne!(parent_path, NONE, "parent must be an element");
                let tag = doc.tag_name(node);
                let child_path = match summary[parent_path as usize].children.get(tag) {
                    Some(&existing) => existing,
                    None => {
                        let new_id = summary.len() as u32;
                        summary.push(SummaryNode {
                            tag: tag.to_string(),
                            children: HashMap::new(),
                            extent: Vec::new(),
                        });
                        summary[parent_path as usize]
                            .children
                            .insert(tag.to_string(), new_id);
                        new_id
                    }
                };
                summary[child_path as usize].extent.push(id);
                path_id[id as usize] = child_path;
            }
        }

        SummaryStore {
            parent,
            first_child,
            next_sibling,
            subtree_end,
            path_id,
            text,
            is_text,
            attrs,
            summary,
            root_summary: 0,
            root: root.0,
            indexes: IndexManager::new(),
        }
    }

    /// Number of distinct paths in the summary (exposed for tests and the
    /// ablation bench).
    pub fn summary_size(&self) -> usize {
        self.summary.len()
    }

    /// Summary nodes with `tag` inside the summary subtree rooted at the
    /// path of `n`, including that path itself.
    fn matching_summary_nodes(&self, n: Node, tag: &str) -> Vec<u32> {
        let start = self.path_id[n.index()];
        if start == NONE {
            return Vec::new();
        }
        let mut matches = Vec::new();
        let mut stack = vec![start];
        let mut first = true;
        while let Some(s) = stack.pop() {
            let node = &self.summary[s as usize];
            if !first && node.tag == tag {
                matches.push(s);
            }
            first = false;
            stack.extend(node.children.values().copied());
        }
        matches
    }

    /// Slice of an extent falling inside `n`'s subtree interval.
    fn extent_range(&self, summary_id: u32, n: Node) -> (usize, usize) {
        let extent = &self.summary[summary_id as usize].extent;
        let lo = extent.partition_point(|&x| x <= n.0);
        let hi = extent.partition_point(|&x| x <= self.subtree_end[n.index()]);
        (lo, hi)
    }
}

impl XmlStore for SummaryStore {
    fn system(&self) -> SystemId {
        SystemId::D
    }

    fn root(&self) -> Node {
        Node(self.root)
    }

    fn node_count(&self) -> usize {
        self.parent.len()
    }

    fn size_bytes(&self) -> usize {
        let n = self.parent.len();
        let mut total = n * (4 * std::mem::size_of::<u32>() + 1 + std::mem::size_of::<Box<str>>());
        total += self.text.iter().map(|t| t.len()).sum::<usize>();
        for list in self.attrs.values() {
            total += list
                .iter()
                .map(|(k, v)| k.capacity() + v.capacity() + 48)
                .sum::<usize>();
        }
        for s in &self.summary {
            total += s.tag.capacity() + s.extent.capacity() * 4 + 64;
        }
        total += self.indexes.size_bytes();
        total
    }

    fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    fn tag_of(&self, n: Node) -> Option<&str> {
        let p = self.path_id[n.index()];
        if p == NONE {
            None
        } else {
            Some(&self.summary[p as usize].tag)
        }
    }

    fn parent(&self, n: Node) -> Option<Node> {
        match self.parent[n.index()] {
            NONE => None,
            p => Some(Node(p)),
        }
    }

    fn children_iter(&self, n: Node) -> ChildIter<'_> {
        ChildIter::Linked(LinkedChildren {
            next_sibling: &self.next_sibling,
            cur: self.first_child[n.index()],
        })
    }

    fn children_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> ChildrenNamed<'a> {
        ChildrenNamed::Linked(LinkedChildrenNamed {
            store: self,
            cur: self.first_child[n.index()],
            tag,
        })
    }

    fn text(&self, n: Node) -> Option<&str> {
        if self.is_text[n.index()] {
            Some(&self.text[n.index()])
        } else {
            None
        }
    }

    fn attribute(&self, n: Node, name: &str) -> Option<String> {
        self.attrs
            .get(&n.0)?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    }

    fn attributes_iter(&self, n: Node) -> AttrIter<'_> {
        match self.attrs.get(&n.0) {
            Some(list) => AttrIter::Pairs(list.iter()),
            None => AttrIter::Empty,
        }
    }

    fn descendants_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> DescendantsNamed<'a> {
        // Resolve the (tiny) set of matching summary paths, then stream
        // their range-filtered extents. One path — the overwhelmingly
        // common case — streams a plain sorted slice; several paths go
        // through the k-way merge cursor. Only summary-node ids are ever
        // buffered, never instance nodes.
        let matches = self.matching_summary_nodes(n, tag);
        match matches.as_slice() {
            [] => DescendantsNamed::Empty,
            &[s] => {
                let (lo, hi) = self.extent_range(s, n);
                DescendantsNamed::Extent(self.summary[s as usize].extent[lo..hi].iter())
            }
            several => DescendantsNamed::SummaryMerge(SummaryDescendantsNamed {
                extents: several
                    .iter()
                    .map(|&s| {
                        let (lo, hi) = self.extent_range(s, n);
                        &self.summary[s as usize].extent[lo..hi]
                    })
                    .collect(),
            }),
        }
    }

    fn count_descendants_named(&self, n: Node, tag: &str) -> usize {
        // The paper's Q6/Q7 trick: pure summary arithmetic, no node access.
        self.matching_summary_nodes(n, tag)
            .into_iter()
            .map(|s| {
                let (lo, hi) = self.extent_range(s, n);
                hi - lo
            })
            .sum()
    }

    fn begin_compile(&self) {}

    fn compile_step(&self, tag: &str) -> usize {
        // Metadata = the summary itself; one traversal, extents give exact
        // cardinalities (a "perfect statistics" optimizer).
        let mut stack = vec![self.root_summary];
        let mut total = 0;
        while let Some(s) = stack.pop() {
            let node = &self.summary[s as usize];
            if node.tag == tag {
                total += node.extent.len();
            }
            stack.extend(node.children.values().copied());
        }
        total
    }

    fn planner_caps(&self) -> PlannerCaps {
        PlannerCaps {
            id_index: true,
            summary_counts: true,
            exact_statistics: true,
            // The structural summary's path extents already serve
            // descendant steps; only the value indexes add anything.
            value_index: true,
            child_values: true,
            ..PlannerCaps::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<site><regions><africa><item id="item0"><name>sword</name></item></africa><europe><item id="item1"><name>gold ring</name></item><item id="item2"><name>cup</name></item></europe></regions><people><person id="person0"><name>Alice</name></person></people></site>"#;

    fn store() -> SummaryStore {
        SummaryStore::load(SAMPLE).unwrap()
    }

    #[test]
    fn summary_collapses_identical_paths() {
        let s = store();
        // Distinct paths: site, regions, africa, item(africa), name,
        // text… — text nodes are not summarized; europe/item/name adds 3.
        assert!(s.summary_size() >= 8);
        assert!(s.summary_size() < s.node_count());
    }

    #[test]
    fn descendants_via_summary_match_naive_walk() {
        let s = store();
        let naive = crate::naive::NaiveStore::load(SAMPLE).unwrap();
        for tag in ["item", "name", "person", "nonexistent"] {
            let via_summary: Vec<u32> = s
                .descendants_named(s.root(), tag)
                .iter()
                .map(|n| n.0)
                .collect();
            let via_walk: Vec<u32> = naive
                .descendants_named(naive.root(), tag)
                .iter()
                .map(|n| n.0)
                .collect();
            assert_eq!(via_summary, via_walk, "tag {tag}");
        }
    }

    #[test]
    fn counts_without_materializing() {
        let s = store();
        assert_eq!(s.count_descendants_named(s.root(), "item"), 3);
        assert_eq!(s.count_descendants_named(s.root(), "email"), 0);
        // Scoped to a subtree: europe holds two items.
        let regions = s.children_named(s.root(), "regions");
        let europe = s.children_named(regions[0], "europe");
        assert_eq!(s.count_descendants_named(europe[0], "item"), 2);
    }

    #[test]
    fn id_index_answers_q1_shape() {
        let s = store();
        let hit = s.lookup_id("person0").unwrap().unwrap();
        assert_eq!(s.tag_of(hit), Some("person"));
        assert_eq!(s.lookup_id("ghost").unwrap(), None);
    }

    #[test]
    fn navigation_matches_dom_semantics() {
        let s = store();
        let root = s.root();
        assert_eq!(s.tag_of(root), Some("site"));
        let items = s.descendants_named(root, "item");
        assert_eq!(s.attribute(items[1], "id").as_deref(), Some("item1"));
        assert_eq!(s.string_value(items[1]), "gold ring");
        assert_eq!(
            s.parent(items[0])
                .and_then(|p| s.tag_of(p).map(str::to_string))
                .as_deref(),
            Some("africa")
        );
    }

    #[test]
    fn compile_step_returns_exact_cardinalities() {
        let s = store();
        assert_eq!(s.compile_step("item"), 3);
        assert_eq!(s.compile_step("missing"), 0);
    }
}
