//! Poison-recovering lock acquisition — the one blessed path to
//! [`Mutex::lock`] and [`RwLock`] access in this workspace.
//!
//! A poisoned lock means some thread panicked while holding the guard.
//! Every shared structure in this codebase is either a monotonic cache
//! (plan cache, index registries), a counter block, or a buffer-pool
//! frame table whose invariants are re-established on the next
//! operation — so the recovery policy is uniform: take the guard anyway
//! ([`std::sync::PoisonError::into_inner`]) and keep serving. Panicking
//! again would only turn one failed request into a poisoned service.
//!
//! The workspace linter (`cargo run -p xmark-lint`, rule **R2**) rejects
//! raw `.lock()` / `.read()` / `.write()` call sites outside this
//! module, so the policy cannot silently fork: a new call site either
//! routes through these helpers or carries an explicit annotated waiver.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquire `m`, recovering the guard if a previous holder panicked.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire `l` for shared reading, recovering from poisoning.
pub fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire `l` for exclusive writing, recovering from poisoning.
pub fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(41));
        let poisoner = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 42);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = Arc::new(RwLock::new(String::from("ok")));
        let poisoner = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write().unwrap();
            panic!("poison the rwlock");
        })
        .join();
        assert!(l.is_poisoned());
        write(&l).push('!');
        assert_eq!(&*read(&l), "ok!");
    }
}
