//! The backend-neutral storage interface.
//!
//! §7 of the paper evaluates seven anonymized systems whose differences are
//! entirely *architectural*: what the physical mapping looks like and which
//! access paths it affords. [`XmlStore`] captures the contract the query
//! evaluator needs; each backend implements the navigation primitives with
//! the data structures its architecture would really use, and overrides the
//! optional accelerated access paths its architecture can offer. Default
//! method bodies are deliberately the *naive* strategy, so a backend's
//! performance profile emerges from what it overrides — exactly how the
//! paper explains its Table 3 ("each mapping favors certain types of
//! queries by enabling efficient execution plans for them").
//!
//! Navigation is expressed as **streaming axis cursors** (see
//! [`crate::axis`]): `children_iter`, `children_named_iter`,
//! `descendants_named_iter` and `attributes_iter` return concrete,
//! allocation-free iterator enums that walk each backend's native
//! structures lazily. The `Vec`-returning forms (`children`,
//! `children_named`, `descendants_named`, `attributes`) remain as thin
//! wrappers over the cursors for tests and non-hot-path callers.

use std::fmt;

use crate::axis::{AttrIter, ChildIter, ChildrenNamed, DescendantsNamed};
use crate::index::IndexManager;

/// A node handle. All stores number nodes in document (pre-)order during
/// bulkload, so comparing handles compares document order — the `BEFORE`
/// operator of Q4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub u32);

impl Node {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Which of the paper's anonymized systems a backend models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemId {
    /// Monolithic edge store (relational, one big heap relation).
    A,
    /// Fragmented binary store (relational, one relation per tag).
    B,
    /// DTD-inlined schema store (relational, entity tables).
    C,
    /// Main-memory store with a structural summary.
    D,
    /// Native interval store with per-tag start indexes.
    E,
    /// Native interval store without secondary indexes (scan-based).
    F,
    /// Embedded naive DOM walker.
    G,
    /// Disk-resident paged interval store (buffer pool + WAL).
    H,
}

impl SystemId {
    /// All mass-storage systems (Table 1 / Table 3 of the paper).
    pub const MASS_STORAGE: [SystemId; 6] = [
        SystemId::A,
        SystemId::B,
        SystemId::C,
        SystemId::D,
        SystemId::E,
        SystemId::F,
    ];

    /// All seven systems of the paper (§7). The disk-resident backend H
    /// is this repo's extension and lives in [`SystemId::EXTENDED`], so
    /// paper-faithful reports stay seven rows.
    pub const ALL: [SystemId; 7] = [
        SystemId::A,
        SystemId::B,
        SystemId::C,
        SystemId::D,
        SystemId::E,
        SystemId::F,
        SystemId::G,
    ];

    /// The paper's seven systems plus the disk-resident backend H.
    pub const EXTENDED: [SystemId; 8] = [
        SystemId::A,
        SystemId::B,
        SystemId::C,
        SystemId::D,
        SystemId::E,
        SystemId::F,
        SystemId::G,
        SystemId::H,
    ];

    /// Short architecture description (used in reports).
    pub fn architecture(self) -> &'static str {
        match self {
            SystemId::A => "relational: monolithic edge table",
            SystemId::B => "relational: fragmented per-tag tables",
            SystemId::C => "relational: DTD-inlined entity tables",
            SystemId::D => "native: structural summary + columnar tree",
            SystemId::E => "native: containment intervals, tag-indexed",
            SystemId::F => "native: containment intervals, scan-based",
            SystemId::G => "embedded: interpretive DOM walker",
            SystemId::H => "disk: paged intervals, buffer pool + WAL",
        }
    }
}

impl fmt::Display for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "System {:?}", self)
    }
}

/// Positional access requested through [`XmlStore::positional_child`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionSpec {
    /// 1-based index from the front (`bidder[1]`).
    First(usize),
    /// `bidder[last()]`.
    Last,
}

/// The access paths a backend's physical mapping offers, resolved once at
/// compile time. The planner reads this to pick plan operators (ID probes,
/// positional indexes, inlined scalar tails, summary counts) instead of
/// probing the store per node at execution time; the executor still falls
/// back gracefully if a particular node is not covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerCaps {
    /// [`XmlStore::lookup_id`] is backed by a real ID index.
    pub id_index: bool,
    /// [`XmlStore::positional_child`] is backed by a positional index.
    pub positional_index: bool,
    /// [`XmlStore::typed_child_value`] answers inlined `tag/text()` tails
    /// (System C's entity columns).
    pub inlined_values: bool,
    /// [`XmlStore::count_descendants_named`] is summary/extent arithmetic,
    /// not a node walk (Systems D and E).
    pub summary_counts: bool,
    /// [`XmlStore::estimate_step`] returns exact extent cardinalities
    /// ("perfect statistics"), not heuristic guesses.
    pub exact_statistics: bool,
    /// The shared element-name index ([`crate::index::ElementIndex`])
    /// should back IndexScan plans on this mapping: predicate-free
    /// descendant steps stab a posting list instead of walking. Backends
    /// whose native descendant access is already extent-based (Systems D
    /// and E) leave this off — their architecture *is* the index.
    pub element_index: bool,
    /// The store's [`IndexManager`] persists loop-invariant join build
    /// sides and lookup indexes across executions, so the executor probes
    /// shared value indexes instead of rebuilding per execution.
    pub value_index: bool,
    /// `…/tag/text()` tails may be answered from the shared typed
    /// child-value index ([`crate::index::ChildValues`]) — the
    /// store-layer generalization of System C's inlined entity columns
    /// (which, where present, still take precedence in plans).
    pub child_values: bool,
}

/// A per-step cardinality estimate the catalog resolves during query
/// compilation — the selectivity input of the cost-based planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEstimate {
    /// Estimated extent cardinality of the step's tag. `0` with
    /// `exact == false` means the backend has no statistics (System F's
    /// "heuristic optimizer guesses").
    pub rows: u64,
    /// Whether `rows` is an exact count.
    pub exact: bool,
}

/// The storage contract. Handles are only meaningful within the store that
/// produced them.
///
/// Every store is `Send + Sync`: bulkload builds immutable structures and
/// the only runtime mutation is the relaxed atomic metadata counter, so a
/// loaded store can be shared across query worker threads behind an
/// `Arc<dyn XmlStore>` (the concurrent service layer in `xmark::service`
/// relies on this).
pub trait XmlStore: Send + Sync {
    /// Which paper system this store models.
    fn system(&self) -> SystemId;

    /// Root element.
    fn root(&self) -> Node;

    /// Total stored nodes (elements + text nodes).
    fn node_count(&self) -> usize;

    /// Resident bytes of the store's data structures (Table 1 "Size"),
    /// **including** whatever the shared [`IndexManager`] has built so
    /// far ([`XmlStore::index_size_bytes`]).
    fn size_bytes(&self) -> usize;

    /// The store's persistent index subsystem: lazily-built, thread-safe,
    /// shared element/attribute/value indexes (see [`crate::index`]).
    /// Every backend owns exactly one manager for its lifetime.
    fn indexes(&self) -> &IndexManager;

    /// Resident bytes of the built shared indexes — the "Index" column of
    /// the Table 1 report, already included in [`XmlStore::size_bytes`].
    fn index_size_bytes(&self) -> usize {
        self.indexes().size_bytes()
    }

    /// On-disk bytes of the store's persistent files (page file + WAL).
    /// `0` for RAM-resident backends — for those, [`XmlStore::size_bytes`]
    /// is the whole story; for disk-resident backends the two numbers
    /// separate the memory budget from the storage footprint.
    fn disk_bytes(&self) -> usize {
        0
    }

    /// Buffer-pool counters, for backends that serve reads through one
    /// (`None` for RAM-resident backends). Benches report these as the
    /// pages-read / hit-rate columns.
    fn paged_stats(&self) -> Option<crate::paged::PoolStats> {
        None
    }

    // ---- versioning / write hooks ---------------------------------------

    /// Monotonic content version of the data this store serves.
    ///
    /// Every bulkloaded backend is immutable and permanently at epoch 0.
    /// MVCC snapshot overlays (the `xmark-txn` crate) report the commit
    /// epoch of the version they pin, so two handles with equal epochs
    /// serve byte-identical content. Plan caches key compiled artifacts
    /// on `(epoch, query text)` — a commit invalidates cached plans by
    /// changing the epoch, never by mutating the cache.
    fn content_epoch(&self) -> u64 {
        0
    }

    /// Total-order key for document-order comparison (`Q4`'s `BEFORE`).
    ///
    /// Bulkloaded backends number nodes in document pre-order, so the id
    /// itself is the key. Snapshot overlays assign fresh ids *above* the
    /// base range to inserted nodes and override this with an order rank
    /// that interleaves them correctly.
    fn doc_order_key(&self, n: Node) -> u64 {
        n.0 as u64
    }

    /// The durable write-ahead log the transaction commit protocol must
    /// append redo/undo records through before publishing a commit.
    /// `None` (the default) means the backend is RAM-resident and commits
    /// need no durability step; backend H returns its WAL.
    fn txn_wal(&self) -> Option<&crate::paged::LogManager> {
        None
    }

    // ---- sharding hooks --------------------------------------------------

    /// Number of physical shards behind this store. `1` (the default) for
    /// every monolithic backend; the sharded union view reports its entity
    /// shard count so the scatter-gather executor knows to partition work.
    fn shard_count(&self) -> usize {
        1
    }

    /// Which entity shard owns node `n`, for sharded stores: `0`-based
    /// entity shard index, or `None` when the node lives in the shared
    /// global head (fused virtual nodes, regions/categories subtrees) or
    /// the store is monolithic. The scatter executor cuts driving-node
    /// runs at ownership boundaries; contiguous runs keep merge order
    /// trivially correct.
    fn shard_of(&self, _n: Node) -> Option<usize> {
        None
    }

    /// Number of physical shard *parts* behind this store, counting the
    /// global head: `0` for monolithic backends, `entity shards + 1` for
    /// the sharded union view. Parts index [`XmlStore::shard_part`].
    fn shard_part_count(&self) -> usize {
        0
    }

    /// The physical store backing part `part` (`0` = global head,
    /// `1..` = entity shards), or `None` on monolithic backends. The
    /// scatter executor runs path subplans against each part directly
    /// and maps results back through [`XmlStore::shard_part_global`].
    fn shard_part(&self, _part: usize) -> Option<&dyn XmlStore> {
        None
    }

    /// Map a node id local to part `part` into the union's global id
    /// space: fused skeleton nodes (root, section elements) map to their
    /// fused ids, owned content maps through the segment offset, and
    /// anything else — or any part on a monolithic store — is `None`.
    fn shard_part_global(&self, _part: usize, _local: Node) -> Option<Node> {
        None
    }

    /// Tag name for elements, `None` for text nodes.
    fn tag_of(&self, n: Node) -> Option<&str>;

    /// Parent node.
    fn parent(&self, n: Node) -> Option<Node>;

    /// Text content of a *text node* (`None` for elements).
    fn text(&self, n: Node) -> Option<&str>;

    /// Whether `n` is a text node. Equivalent to `text(n).is_some()`,
    /// but answerable without materializing the content — disk-resident
    /// backends test a tag code on the node page instead of fetching
    /// (and caching) text bytes, so `child::text()` existence tests stay
    /// cheap.
    fn is_text_node(&self, n: Node) -> bool {
        self.text(n).is_some()
    }

    /// Attribute value.
    fn attribute(&self, n: Node, name: &str) -> Option<String>;

    // ---- streaming axes --------------------------------------------------

    /// Cursor over all children (elements and text nodes) in document
    /// order. Backends walk their native structures lazily; no
    /// intermediate `Vec<Node>` is built.
    fn children_iter(&self, n: Node) -> ChildIter<'_>;

    /// Cursor over the attributes of `n` in the store's canonical order,
    /// as borrowed `(name, value)` pairs.
    fn attributes_iter(&self, n: Node) -> AttrIter<'_>;

    /// Cursor over element children with the given tag, in document order.
    ///
    /// The default filters [`XmlStore::children_iter`] through
    /// [`XmlStore::tag_of`]; backends override it with a cursor that tests
    /// tags natively (interned symbols, tag codes, per-tag fragments).
    fn children_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> ChildrenNamed<'a> {
        let matched: Vec<Node> = self
            .children_iter(n)
            .filter(|&c| self.tag_of(c) == Some(tag))
            .collect();
        ChildrenNamed::from_vec(matched)
    }

    /// Cursor over descendant elements with the given tag, in document
    /// order.
    ///
    /// The default is a materialized depth-first walk; every backend
    /// overrides it with its native access path (tag extents, stab joins,
    /// summary extents, stackless DOM walks).
    fn descendants_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> DescendantsNamed<'a> {
        let mut out = Vec::new();
        let mut stack: Vec<Node> = self.children_iter(n).collect();
        stack.reverse();
        while let Some(cur) = stack.pop() {
            if self.tag_of(cur) == Some(tag) {
                out.push(cur);
            }
            let before = stack.len();
            stack.extend(self.children_iter(cur));
            stack[before..].reverse();
        }
        DescendantsNamed::from_vec(out)
    }

    // ---- materializing wrappers ------------------------------------------

    /// All children (elements and text nodes) in document order.
    ///
    /// Thin wrapper over [`XmlStore::children_iter`] kept for tests and
    /// non-hot-path callers; the evaluator streams instead.
    fn children(&self, n: Node) -> Vec<Node> {
        self.children_iter(n).collect()
    }

    /// Element children with the given tag.
    ///
    /// Thin wrapper over [`XmlStore::children_named_iter`]; prefer the
    /// cursor on hot paths.
    fn children_named(&self, n: Node, tag: &str) -> Vec<Node> {
        self.children_named_iter(n, tag).collect()
    }

    /// Descendant elements with the given tag, in document order.
    ///
    /// Thin wrapper over [`XmlStore::descendants_named_iter`]; prefer the
    /// cursor on hot paths.
    fn descendants_named(&self, n: Node, tag: &str) -> Vec<Node> {
        self.descendants_named_iter(n, tag).collect()
    }

    /// All attributes in document order, as owned pairs.
    ///
    /// Thin wrapper over [`XmlStore::attributes_iter`]; prefer the cursor
    /// on hot paths.
    fn attributes(&self, n: Node) -> Vec<(String, String)> {
        self.attributes_iter(n)
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    // ---- derived / accelerated access paths -----------------------------

    /// Count of descendant elements with the given tag. Backends with
    /// structural summaries (System D) answer this without touching nodes —
    /// the paper's Q6/Q7 observation.
    fn count_descendants_named(&self, n: Node, tag: &str) -> usize {
        self.descendants_named_iter(n, tag).count()
    }

    /// Look up an element by its `id` attribute (DTD `ID`).
    ///
    /// One code path for all seven backends: the shared attribute-value
    /// index ([`IndexManager::lookup_id`]), built lazily on first use and
    /// shared for the store's lifetime — the per-backend `@id` hash maps
    /// are retired. The outer `Option` is kept for executor compatibility
    /// (`None` = "no index, scan"), but the default never returns it.
    /// Whether the *planner* schedules ID probes on a backend remains an
    /// architectural statement ([`PlannerCaps::id_index`]): Systems F and
    /// G still plan Q1 as a scan, faithful to the paper, even though a
    /// direct `lookup_id` call now answers.
    fn lookup_id(&self, id: &str) -> Option<Option<Node>> {
        Some(self.indexes().lookup_id(self, id))
    }

    /// Inlined scalar access: the string value of the unique `tag` child of
    /// `n`, *if* this store inlines that value (System C's entity tables).
    /// Outer `None` = not inlined here; inner `None` = inlined but NULL.
    fn typed_child_value(&self, _n: Node, _tag: &str) -> Option<Option<String>> {
        None
    }

    /// Positional child access (`bidder[1]`, `bidder[last()]`) if the store
    /// maintains a positional index (System C). Outer `None` = unsupported.
    fn positional_child(&self, _n: Node, _tag: &str, _pos: PositionSpec) -> Option<Option<Node>> {
        None
    }

    /// The concatenated text of the subtree ("string value").
    fn string_value(&self, n: Node) -> String {
        let mut out = String::new();
        self.string_value_into(n, &mut out);
        out
    }

    /// Append the string value of `n` to `out`.
    fn string_value_into(&self, n: Node, out: &mut String) {
        if let Some(t) = self.text(n) {
            out.push_str(t);
            return;
        }
        for child in self.children_iter(n) {
            self.string_value_into(child, out);
        }
    }

    /// Serialize the subtree rooted at `n` as XML text (Q13
    /// "reconstruction"). Thin wrapper over
    /// [`XmlStore::serialize_node_to`]; writing to a `String` cannot fail.
    fn serialize_node(&self, n: Node, out: &mut String) {
        let _ = self.serialize_node_to(n, out);
    }

    /// Serialize the subtree rooted at `n` into an arbitrary
    /// [`fmt::Write`] sink — the primitive behind the query layer's
    /// streaming `write_to` serialization: result bytes flow to the sink
    /// item by item instead of accumulating in one output `String`. The
    /// default reconstructs through the streaming cursors — which is
    /// precisely the cost the paper says Q13 measures.
    fn serialize_node_to(&self, n: Node, out: &mut dyn fmt::Write) -> fmt::Result {
        if let Some(t) = self.text(n) {
            return xmark_xml::escape::escape_text_to(t, out);
        }
        let tag = self.tag_of(n).expect("serialize of non-node");
        out.write_char('<')?;
        out.write_str(tag)?;
        for (name, value) in self.attributes_iter(n) {
            out.write_char(' ')?;
            out.write_str(name)?;
            out.write_str("=\"")?;
            xmark_xml::escape::escape_attr_to(value, out)?;
            out.write_char('"')?;
        }
        let mut children = self.children_iter(n);
        match children.next() {
            None => out.write_str("/>"),
            Some(first) => {
                out.write_char('>')?;
                self.serialize_node_to(first, out)?;
                for child in children {
                    self.serialize_node_to(child, out)?;
                }
                out.write_str("</")?;
                out.write_str(tag)?;
                out.write_char('>')
            }
        }
    }

    // ---- compile-phase hooks (Table 2) -----------------------------------

    /// Called by the compiler once per query before lowering; resets the
    /// metadata-access counter.
    fn begin_compile(&self) {}

    /// Called by the compiler for every path step with the step's tag. The
    /// backend resolves whatever catalog metadata its architecture needs —
    /// one heap-relation descriptor for System A, a per-tag table for
    /// System B — and returns an estimated extent cardinality for the
    /// optimizer.
    fn compile_step(&self, _tag: &str) -> usize {
        0
    }

    /// Metadata accesses since [`XmlStore::begin_compile`].
    fn metadata_accesses(&self) -> u64 {
        0
    }

    /// The access paths this mapping offers the planner. Resolved once per
    /// compilation; the default claims nothing, forcing generic plans
    /// (System G).
    fn planner_caps(&self) -> PlannerCaps {
        PlannerCaps::default()
    }

    /// Resolve catalog statistics for one path step — the selectivity
    /// estimate the cost-based planner consumes. Counts as metadata access
    /// exactly like [`XmlStore::compile_step`] (it *is* the same catalog
    /// touch, plus the exactness flag).
    fn estimate_step(&self, tag: &str) -> StepEstimate {
        StepEstimate {
            rows: self.compile_step(tag) as u64,
            exact: self.planner_caps().exact_statistics,
        }
    }
}

/// A handle that resolves the *current* consistent store version on
/// demand — the seam between the read path and the transaction layer.
///
/// The concurrent `QueryService` holds one of these instead of a fixed
/// `Arc<dyn XmlStore>`: each request calls [`StoreSource::snapshot`]
/// once and executes entirely against the pinned version, so readers
/// never block on (or observe half of) a concurrent commit. A plain
/// shared store is its own source (the blanket impl below); the
/// `xmark-txn` crate's `VersionedStore` returns its latest published
/// snapshot.
pub trait StoreSource: Send + Sync {
    /// Pin and return the current version. Cheap (an `Arc` clone).
    fn snapshot(&self) -> std::sync::Arc<dyn XmlStore>;
}

impl StoreSource for std::sync::Arc<dyn XmlStore> {
    fn snapshot(&self) -> std::sync::Arc<dyn XmlStore> {
        std::sync::Arc::clone(self)
    }
}
