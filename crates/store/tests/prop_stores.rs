//! Property tests: all seven storage architectures are *navigationally
//! equivalent* on arbitrary documents — same children, descendants,
//! attributes, string values and serializations. The query layer's
//! cross-backend equivalence rests on exactly these primitives.

use proptest::prelude::*;

use xmark_store::{build_store, SystemId, XmlStore};

const TAGS: [&str; 6] = ["site", "a", "b", "c", "item", "person"];

/// Generate a random well-formed XML document string by construction.
fn arb_document() -> impl Strategy<Value = String> {
    arb_elem(3).prop_map(|body| format!("<site>{body}</site>"))
}

fn arb_elem(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        "[a-z ]{1,12}".prop_filter("non-blank", |s| !s.trim().is_empty()),
        (0..TAGS.len(), proptest::option::of("[a-z0-9]{1,6}")).prop_map(|(t, attr)| {
            let tag = TAGS[t];
            match attr {
                Some(v) => format!("<{tag} id=\"{v}\"/>"),
                None => format!("<{tag}/>"),
            }
        }),
    ];
    leaf.prop_recursive(depth, 32, 4, |inner| {
        (0..TAGS.len(), prop::collection::vec(inner, 0..4)).prop_map(|(t, children)| {
            let tag = TAGS[t];
            format!("<{tag}>{}</{tag}>", children.concat())
        })
    })
    .boxed()
}

fn stores(xml: &str) -> Vec<Box<dyn XmlStore>> {
    SystemId::ALL
        .iter()
        .map(|&s| build_store(s, xml).expect("document parses"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_stores_agree_on_descendants(xml in arb_document(), tag in 0..TAGS.len()) {
        let all = stores(&xml);
        let reference: Vec<u32> = all[0]
            .descendants_named(all[0].root(), TAGS[tag])
            .iter()
            .map(|n| n.0)
            .collect();
        for store in &all[1..] {
            let got: Vec<u32> = store
                .descendants_named(store.root(), TAGS[tag])
                .iter()
                .map(|n| n.0)
                .collect();
            prop_assert_eq!(&got, &reference, "{} disagrees", store.system());
        }
    }

    #[test]
    fn all_stores_agree_on_counts(xml in arb_document(), tag in 0..TAGS.len()) {
        let all = stores(&xml);
        let reference = all[0].count_descendants_named(all[0].root(), TAGS[tag]);
        for store in &all[1..] {
            prop_assert_eq!(
                store.count_descendants_named(store.root(), TAGS[tag]),
                reference,
                "{} disagrees",
                store.system()
            );
        }
    }

    #[test]
    fn all_stores_agree_on_serialization(xml in arb_document()) {
        let all = stores(&xml);
        let mut reference = String::new();
        all[0].serialize_node(all[0].root(), &mut reference);
        for store in &all[1..] {
            let mut got = String::new();
            store.serialize_node(store.root(), &mut got);
            prop_assert_eq!(&got, &reference, "{} disagrees", store.system());
        }
        // And the serialization parses back to the same node count.
        let reparsed = xmark_xml::parse_document(&reference).unwrap();
        prop_assert_eq!(reparsed.node_count(), all[0].node_count());
    }

    #[test]
    fn sink_serialization_matches_string_serialization(xml in arb_document()) {
        // `serialize_node_to` (the streaming-write primitive behind the
        // query layer's `write_to`) must produce exactly the bytes of the
        // String-building `serialize_node`, on every backend and every
        // element of the document — including through a sink that records
        // write granularity, proving no backend depends on buffering the
        // whole subtree.
        struct CountingSink {
            out: String,
            writes: usize,
        }
        impl std::fmt::Write for CountingSink {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                self.writes += 1;
                self.out.push_str(s);
                Ok(())
            }
        }

        for store in stores(&xml) {
            let mut stack = vec![store.root()];
            while let Some(n) = stack.pop() {
                let mut expected = String::new();
                store.serialize_node(n, &mut expected);
                let mut sink = CountingSink { out: String::new(), writes: 0 };
                store.serialize_node_to(n, &mut sink).unwrap();
                prop_assert_eq!(
                    &sink.out,
                    &expected,
                    "{} sink bytes diverge",
                    store.system()
                );
                prop_assert!(sink.writes >= 1, "nothing reached the sink");
                stack.extend(store.children(n));
            }
        }
    }

    #[test]
    fn all_stores_agree_on_string_values(xml in arb_document()) {
        let all = stores(&xml);
        let reference = all[0].string_value(all[0].root());
        for store in &all[1..] {
            prop_assert_eq!(
                store.string_value(store.root()),
                reference.clone(),
                "{} disagrees",
                store.system()
            );
        }
    }

    #[test]
    fn children_partition_matches_navigation(xml in arb_document()) {
        // children() of every element equals the concatenation of its
        // element and text children in document order, on every backend.
        let all = stores(&xml);
        let reference = &all[0];
        let ref_children: Vec<Vec<u32>> = reference
            .descendants_named(reference.root(), "a")
            .iter()
            .map(|&n| reference.children(n).iter().map(|c| c.0).collect())
            .collect();
        for store in &all[1..] {
            let got: Vec<Vec<u32>> = store
                .descendants_named(store.root(), "a")
                .iter()
                .map(|&n| store.children(n).iter().map(|c| c.0).collect())
                .collect();
            prop_assert_eq!(&got, &ref_children, "{} disagrees", store.system());
        }
    }

    #[test]
    fn parent_of_child_is_self(xml in arb_document()) {
        for store in stores(&xml) {
            let root = store.root();
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                for c in store.children(n) {
                    prop_assert_eq!(store.parent(c), Some(n), "{}", store.system());
                    stack.push(c);
                }
            }
            prop_assert_eq!(store.parent(root), None);
        }
    }

    #[test]
    fn streaming_axes_agree_across_all_backends(xml in arb_document(), tag in 0..TAGS.len()) {
        // The streaming cursors are the storage contract now, and every
        // backend overrides them with its own native lazy walk. Comparing
        // a cursor against the same store's `Vec` wrapper would be
        // tautological (the wrapper just collects the cursor), so the
        // oracle is cross-backend: on every element of the document, every
        // backend's cursors must yield exactly the node sequences (and
        // attribute pairs) the first backend reports. Counts must agree
        // with the streamed sequence too (System D answers them from pure
        // summary arithmetic).
        let tag = TAGS[tag];
        let all = stores(&xml);
        let reference = &all[0];
        let mut pending = vec![reference.root()];
        while let Some(n) = pending.pop() {
            let ref_children: Vec<u32> = reference.children_iter(n).map(|c| c.0).collect();
            let ref_named: Vec<u32> = reference.children_named_iter(n, tag).map(|c| c.0).collect();
            let ref_desc: Vec<u32> =
                reference.descendants_named_iter(n, tag).map(|c| c.0).collect();
            let ref_attrs: Vec<(String, String)> = reference
                .attributes_iter(n)
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect();
            prop_assert_eq!(
                reference.count_descendants_named(n, tag),
                ref_desc.len(),
                "{} count_descendants_named",
                reference.system()
            );
            for store in &all[1..] {
                let children: Vec<u32> = store.children_iter(n).map(|c| c.0).collect();
                prop_assert_eq!(&children, &ref_children, "{} children_iter", store.system());

                let named: Vec<u32> = store.children_named_iter(n, tag).map(|c| c.0).collect();
                prop_assert_eq!(&named, &ref_named, "{} children_named_iter", store.system());

                let desc: Vec<u32> =
                    store.descendants_named_iter(n, tag).map(|c| c.0).collect();
                prop_assert_eq!(&desc, &ref_desc, "{} descendants_named_iter", store.system());
                prop_assert_eq!(
                    store.count_descendants_named(n, tag),
                    desc.len(),
                    "{} count_descendants_named",
                    store.system()
                );

                let attrs: Vec<(String, String)> = store
                    .attributes_iter(n)
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect();
                prop_assert_eq!(&attrs, &ref_attrs, "{} attributes_iter", store.system());
            }
            pending.extend(ref_children.into_iter().map(xmark_store::Node));
        }
    }

    #[test]
    fn element_index_postings_equal_descendant_walks(xml in arb_document(), tag in 0..TAGS.len()) {
        // The IndexScan contract: on every backend and every element of a
        // random document, the shared element index's stabbed posting
        // slice must equal the native descendant cursor's output — same
        // nodes, same (document) order. This is what lets the planner
        // swap a walk for a posting slice without an output diff.
        let tag = TAGS[tag];
        for store in stores(&xml) {
            let store = store.as_ref();
            let index = store.indexes().element(store);
            prop_assert!(index.ordered(), "{} ids must be pre-order", store.system());
            let mut stack = vec![store.root()];
            while let Some(n) = stack.pop() {
                let walked: Vec<u32> = store
                    .descendants_named_iter(n, tag)
                    .map(|c| c.0)
                    .collect();
                let stabbed = index
                    .postings_in(tag, n)
                    .expect("ordered index always stabs");
                prop_assert_eq!(
                    stabbed,
                    &walked[..],
                    "{} postings diverge under node {}",
                    store.system(),
                    n
                );
                prop_assert_eq!(
                    index.count_in(tag, n),
                    Some(walked.len()),
                    "{} counts diverge",
                    store.system()
                );
                stack.extend(store.children(n));
            }
        }
    }

    #[test]
    fn id_lookups_agree_where_supported(xml in arb_document(), probe in "[a-z0-9]{1,6}") {
        let all = stores(&xml);
        // Ground truth from a walk.
        let reference = &all[0];
        let mut truth = None;
        let mut stack = vec![reference.root()];
        while let Some(n) = stack.pop() {
            if reference.attribute(n, "id").as_deref() == Some(probe.as_str()) {
                // Random docs may repeat ids; only check single-match docs.
                if truth.is_some() {
                    return Ok(());
                }
                truth = Some(n.0);
            }
            stack.extend(reference.children(n));
        }
        for store in &all {
            if let Some(hit) = store.lookup_id(&probe) {
                prop_assert_eq!(hit.map(|n| n.0), truth, "{} disagrees", store.system());
            }
        }
    }
}
