//! The immutable delta overlay a [`crate::SnapshotStore`] layers over
//! its base store.
//!
//! A [`DeltaState`] is built privately by a committing transaction and
//! never mutated after publication — readers share it through the
//! snapshot's `Arc`. All maps are keyed by node id; inserted nodes use
//! fresh ids at or above [`DeltaState::floor`], so `id < floor` ⇔ "base
//! node". Per-entry payloads are `Arc`-shared, which makes the
//! copy-on-write clone a commit starts from `O(entries)` pointer bumps
//! rather than a deep copy.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use xmark_store::Node;

/// One node created by a transaction. Text nodes have `tag == None`.
#[derive(Debug, Clone)]
pub(crate) struct InsertedNode {
    /// Element tag, or `None` for a text node.
    pub tag: Option<Box<str>>,
    /// Text content (empty for elements).
    pub text: Box<str>,
    /// Attributes in document order (elements only).
    pub attrs: Vec<(String, String)>,
    /// Parent node id (base or inserted).
    pub parent: u32,
    /// Children ids in document order.
    pub children: Vec<u32>,
    /// Document-order rank (see the crate docs).
    pub rank: u64,
}

/// The committed difference between a snapshot and its base store.
#[derive(Default, Clone)]
pub(crate) struct DeltaState {
    /// Commit epoch this delta was published at (0 = pristine base).
    pub epoch: u64,
    /// First fresh node id — every id `>= floor` is an inserted node.
    pub floor: u32,
    /// Next id an insert will allocate (deterministic across replay).
    pub next_id: u32,
    /// Inserted nodes, by id. Deleted inserted nodes are removed again.
    pub inserted: HashMap<u32, Arc<InsertedNode>>,
    /// Full children-list overrides for *base* parents whose child list
    /// changed (an insert appended, or a delete removed, a child).
    pub children_over: HashMap<u32, Arc<Vec<u32>>>,
    /// Replaced content of base text nodes.
    pub text_over: HashMap<u32, Arc<str>>,
    /// Full attribute-list overrides for base elements.
    pub attr_over: HashMap<u32, Arc<Vec<(String, String)>>>,
    /// Every deleted *base* id (subtree deletes record the whole id
    /// set; deleted inserted nodes simply leave [`DeltaState::inserted`]).
    pub deleted_base: HashSet<u32>,
    /// Sorted, disjoint base-id intervals covering every modification
    /// point — the gate deciding when a base fast path may be
    /// delegated (see [`DeltaState::base_range_clean`]).
    pub touched: Vec<(u32, u32)>,
    /// Base subtree-end array (`id → last id in its base subtree`),
    /// shared from the base element index; used for rank math and the
    /// clean gate.
    pub base_end: Arc<Vec<u32>>,
}

impl DeltaState {
    /// A pristine epoch-0 delta over a base whose ids end below `floor`.
    pub fn pristine(floor: u32, base_end: Arc<Vec<u32>>) -> DeltaState {
        DeltaState {
            epoch: 0,
            floor,
            next_id: floor,
            base_end,
            ..DeltaState::default()
        }
    }

    /// Whether `id` names an inserted (delta) node.
    pub fn is_delta(&self, id: u32) -> bool {
        id >= self.floor
    }

    /// Whether any change whatsoever has been committed.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
            && self.deleted_base.is_empty()
            && self.text_over.is_empty()
            && self.attr_over.is_empty()
    }

    /// Document-order rank of a live node.
    pub fn rank_of(&self, id: u32) -> u64 {
        match self.inserted.get(&id) {
            Some(node) => node.rank,
            None => (id as u64) << 32,
        }
    }

    /// Last id of the *base* subtree under base node `id` (inclusive).
    pub fn base_subtree_end(&self, id: u32) -> u32 {
        self.base_end.get(id as usize).copied().unwrap_or(id)
    }

    /// Whether the base-id range `[lo, hi]` contains no modification
    /// point — the condition under which reads below a base node may be
    /// answered by the base store directly.
    pub fn base_range_clean(&self, lo: u32, hi: u32) -> bool {
        // First interval whose end reaches lo; it is the only candidate
        // that could intersect [lo, hi] from the left.
        let i = self.touched.partition_point(|&(_, end)| end < lo);
        match self.touched.get(i) {
            Some(&(start, _)) => start > hi,
            None => true,
        }
    }

    /// Whether base node `n`'s whole subtree is unmodified.
    pub fn subtree_clean(&self, n: Node) -> bool {
        !self.is_delta(n.0) && self.base_range_clean(n.0, self.base_subtree_end(n.0))
    }

    /// Record a modification point covering base ids `[lo, hi]`,
    /// keeping [`DeltaState::touched`] sorted and disjoint.
    pub fn touch(&mut self, lo: u32, hi: u32) {
        let i = self
            .touched
            .partition_point(|&(_, end)| (end as u64) + 1 < lo as u64);
        // Merge every interval that overlaps or abuts [lo, hi].
        let mut lo = lo;
        let mut hi = hi;
        let mut j = i;
        while let Some(&(s, e)) = self.touched.get(j) {
            if s > hi.saturating_add(1) {
                break;
            }
            lo = lo.min(s);
            hi = hi.max(e);
            j += 1;
        }
        self.touched.splice(i..j, std::iter::once((lo, hi)));
    }

    /// The approximate resident bytes of the delta itself (reported on
    /// top of the base store's own accounting).
    pub fn size_bytes(&self) -> usize {
        let inserted: usize = self
            .inserted
            .values()
            .map(|n| {
                std::mem::size_of::<InsertedNode>()
                    + n.text.len()
                    + n.attrs
                        .iter()
                        .map(|(k, v)| k.capacity() + v.capacity())
                        .sum::<usize>()
                    + n.children.len() * 4
                    + 48
            })
            .sum();
        let children: usize = self.children_over.values().map(|c| c.len() * 4 + 48).sum();
        let text: usize = self.text_over.values().map(|t| t.len() + 48).sum();
        let attrs: usize = self
            .attr_over
            .values()
            .map(|list| {
                list.iter()
                    .map(|(k, v)| k.capacity() + v.capacity() + 16)
                    .sum::<usize>()
                    + 48
            })
            .sum();
        inserted + children + text + attrs + self.deleted_base.len() * 8 + self.touched.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_merges_overlapping_and_abutting_intervals() {
        let mut delta = DeltaState::pristine(100, Arc::new(Vec::new()));
        delta.touch(10, 12);
        delta.touch(20, 25);
        assert_eq!(delta.touched, vec![(10, 12), (20, 25)]);
        delta.touch(13, 19); // abuts both sides
        assert_eq!(delta.touched, vec![(10, 25)]);
        delta.touch(0, 0);
        delta.touch(30, 31);
        assert_eq!(delta.touched, vec![(0, 0), (10, 25), (30, 31)]);
        assert!(!delta.base_range_clean(24, 40));
        assert!(!delta.base_range_clean(0, 0));
        assert!(delta.base_range_clean(1, 9));
        assert!(delta.base_range_clean(26, 29));
        assert!(delta.base_range_clean(32, 99));
    }
}
