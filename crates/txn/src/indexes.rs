//! Commit-time incremental index maintenance.
//!
//! [`maintain`] derives the successor snapshot's
//! [`IndexManager`] from the predecessor's without rebuilding:
//!
//! * **element postings** — copy-on-write splice of only the touched
//!   tags' lists (deleted ids filtered, inserted ids merged by
//!   document-order rank; untouched tags share the predecessor's
//!   `Arc`ed lists);
//! * **attribute indexes** — upsert/remove against a cloned map with
//!   first-in-document-order semantics, matching a rebuild;
//! * **`cvals|` typed-value slots** — surgical patch of the
//!   parent → text-children map;
//! * **every other value slot** (join build sides, keyed lookups, path
//!   materializations) — survives iff its planner signature mentions no
//!   touched tag or attribute name. The match is a conservative
//!   substring test: signatures embed step tags with single-character
//!   axis prefixes, so substring matching can only over-invalidate
//!   (costing a lazy rebuild), never under-invalidate.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use xmark_store::{AttrIndex, ChildValues, ElementIndex, IndexManager, Node, XmlStore};

use crate::delta::DeltaState;
use crate::snapshot::SnapshotStore;

/// An element created by the transaction (journal entry for index
/// maintenance).
pub(crate) struct InsertedElem {
    /// Fresh node id.
    pub id: u32,
    /// Element tag.
    pub tag: String,
    /// Parent id at insert time.
    pub parent: u32,
    /// Attributes at insert time.
    pub attrs: Vec<(String, String)>,
    /// Direct text-node children ids.
    pub text_children: Vec<u32>,
}

/// An element removed by the transaction.
pub(crate) struct DeletedElem {
    /// The removed id (base or delta).
    pub id: u32,
    /// Element tag.
    pub tag: String,
    /// Parent id at delete time.
    pub parent: u32,
    /// Attributes at delete time.
    pub attrs: Vec<(String, String)>,
}

/// The change journal one commit produces for [`maintain`].
#[derive(Default)]
pub(crate) struct Changes {
    /// Elements created (in document pre-order per insert).
    pub inserted_elems: Vec<InsertedElem>,
    /// Elements removed.
    pub deleted_elems: Vec<DeletedElem>,
    /// Text nodes removed, with their parent at delete time.
    pub deleted_texts: Vec<(u32, u32)>,
    /// Every removed id, element or text.
    pub deleted_ids: HashSet<u32>,
    /// Attribute replacements: `(node, name, old value, new value)`.
    pub attr_sets: Vec<(u32, String, Option<String>, String)>,
    /// Tags and attribute names a cached structure could observe the
    /// change through (op subtree tags + anchor ancestor tags).
    pub touched_tags: HashSet<String>,
    /// Whether any insert happened (degrades the `ordered` fast path).
    pub had_insert: bool,
}

/// Whether a planner signature could observe a change to any touched
/// tag or attribute name. Conservative: substring containment.
fn sig_affected(sig: &str, touched: &HashSet<String>) -> bool {
    sig.contains('*') || touched.iter().any(|t| sig.contains(t.as_str()))
}

/// First-in-document-order upsert, matching `AttrIndex::build`'s
/// duplicate handling.
fn upsert_attr(map: &mut HashMap<String, u32>, value: &str, id: u32, delta: &DeltaState) {
    match map.entry(value.to_string()) {
        std::collections::hash_map::Entry::Occupied(mut slot) => {
            if delta.rank_of(id) < delta.rank_of(*slot.get()) {
                slot.insert(id);
            }
        }
        std::collections::hash_map::Entry::Vacant(slot) => {
            slot.insert(id);
        }
    }
}

/// Derive the successor snapshot's index manager from the
/// predecessor's plus the commit's change journal.
pub(crate) fn maintain(cur: &SnapshotStore, delta: &DeltaState, changes: &Changes) -> IndexManager {
    let fresh_ids: HashSet<u32> = changes.inserted_elems.iter().map(|e| e.id).collect();

    // ---- element index: per-tag splice -------------------------------
    let old = cur.indexes().element(cur);
    let mut postings = old.shared_postings().clone();
    let affected: HashSet<&str> = changes
        .inserted_elems
        .iter()
        .map(|e| e.tag.as_str())
        .chain(changes.deleted_elems.iter().map(|d| d.tag.as_str()))
        .collect();
    for tag in affected {
        let kept: Vec<u32> = postings
            .get(tag)
            .map(|list| {
                list.iter()
                    .copied()
                    .filter(|id| !changes.deleted_ids.contains(id))
                    .collect()
            })
            .unwrap_or_default();
        let mut fresh: Vec<u32> = changes
            .inserted_elems
            .iter()
            .filter(|e| e.tag == tag && !changes.deleted_ids.contains(&e.id))
            .map(|e| e.id)
            .collect();
        fresh.sort_by_key(|&id| delta.rank_of(id));
        let mut merged = Vec::with_capacity(kept.len() + fresh.len());
        let mut next = fresh.into_iter().peekable();
        for id in kept {
            let rank = delta.rank_of(id);
            while let Some(&f) = next.peek() {
                if delta.rank_of(f) < rank {
                    merged.push(f);
                    next.next();
                } else {
                    break;
                }
            }
            merged.push(id);
        }
        merged.extend(next);
        if merged.is_empty() {
            postings.remove(tag);
        } else {
            postings.insert(tag.to_string(), Arc::new(merged));
        }
    }
    let removed_existing = changes
        .deleted_elems
        .iter()
        .filter(|d| !fresh_ids.contains(&d.id))
        .count();
    let live_new = changes
        .inserted_elems
        .iter()
        .filter(|e| !changes.deleted_ids.contains(&e.id))
        .count();
    let element = ElementIndex::from_parts(
        postings,
        Arc::clone(old.shared_subtree_end()),
        old.ordered() && !changes.had_insert,
        old.elements() - removed_existing + live_new,
    );

    // ---- attribute indexes: clone + patch ----------------------------
    let mut attrs_out = Vec::new();
    for (name, index) in cur.indexes().built_attrs() {
        let mut map = index.clone_map();
        for d in &changes.deleted_elems {
            if fresh_ids.contains(&d.id) {
                continue; // never entered the map
            }
            for (k, v) in &d.attrs {
                if *k == name && map.get(v) == Some(&d.id) {
                    map.remove(v);
                }
            }
        }
        for e in &changes.inserted_elems {
            if changes.deleted_ids.contains(&e.id) {
                continue;
            }
            for (k, v) in &e.attrs {
                if *k == name {
                    upsert_attr(&mut map, v, e.id, delta);
                }
            }
        }
        for (node, aname, old_value, new_value) in &changes.attr_sets {
            if *aname != name {
                continue;
            }
            if let Some(o) = old_value {
                if map.get(o) == Some(node) {
                    map.remove(o);
                }
            }
            if !changes.deleted_ids.contains(node) {
                upsert_attr(&mut map, new_value, *node, delta);
            }
        }
        attrs_out.push((name, Arc::new(AttrIndex::from_map(map))));
    }

    // ---- value slots: patch cvals, signature-gate the rest -----------
    let mut values_out: Vec<(String, Arc<dyn Any + Send + Sync>, usize)> = Vec::new();
    for (sig, value, bytes) in cur.indexes().built_values() {
        if let Some(tag) = sig.strip_prefix("cvals|").map(str::to_string) {
            let Ok(cvals) = value.downcast::<ChildValues>() else {
                continue;
            };
            let mut map = cvals.clone_map();
            for d in &changes.deleted_elems {
                map.remove(&d.id);
                if d.tag == tag && !changes.deleted_ids.contains(&d.parent) {
                    if let Some(list) = map.get_mut(&d.parent) {
                        list.retain(|id| !changes.deleted_ids.contains(id));
                    }
                }
            }
            for &(text_id, text_parent) in &changes.deleted_texts {
                if changes.deleted_ids.contains(&text_parent) {
                    continue; // the parent's own removal already covers it
                }
                if cur.tag_of(Node(text_parent)) == Some(&tag) {
                    if let Some(grandparent) = cur.parent(Node(text_parent)) {
                        if let Some(list) = map.get_mut(&grandparent.0) {
                            list.retain(|&id| id != text_id);
                        }
                    }
                }
            }
            for e in &changes.inserted_elems {
                if e.tag == tag && !changes.deleted_ids.contains(&e.id) {
                    map.entry(e.parent).or_default().extend(
                        e.text_children
                            .iter()
                            .filter(|c| !changes.deleted_ids.contains(c)),
                    );
                }
            }
            let patched = ChildValues::from_map(map);
            let new_bytes = patched.size_bytes();
            values_out.push((sig, Arc::new(patched), new_bytes));
        } else if !sig_affected(&sig, &changes.touched_tags) {
            values_out.push((sig, value, bytes));
        }
        // else: invalidated — the slot rebuilds lazily against the new
        // snapshot the first time a plan asks for it.
    }

    IndexManager::seeded(Some(element), attrs_out, values_out)
}
