//! The transaction subsystem: structural updates over the read-only
//! XMark stores, with MVCC snapshot isolation and WAL-backed recovery.
//!
//! XMark models a live auction site, but every backend bulkloads an
//! immutable document. This crate adds the write path **without
//! touching the bulkloaded data**: a [`VersionedStore`] wraps any
//! backend and layers committed changes on top of it as an immutable
//! delta, so the eight storage architectures keep their read-optimized
//! layouts while the document evolves.
//!
//! # The snapshot/commit protocol
//!
//! ```text
//!             readers                       one writer at a time
//!    ┌──────────────────────┐      ┌────────────────────────────────┐
//!    │ snapshot() ──► Arc ──┼──┐   │ begin() ──► Transaction (ops)  │
//!    │   pin epoch N        │  │   │ commit():                      │
//!    └──────────────────────┘  │   │   1. re-check epoch (conflict) │
//!        never blocks,         │   │   2. apply ops to a *copy* of  │
//!        never sees N+1        │   │      the delta (O(changes))    │
//!        mid-request           │   │   3. maintain indexes          │
//!                              │   │   4. WAL append + force (H)    │
//!                              └── │   5. publish epoch N+1         │
//!                                  └────────────────────────────────┘
//! ```
//!
//! * **Readers never block.** [`VersionedStore::snapshot`] clones an
//!   `Arc` to the currently published [`SnapshotStore`] — an immutable
//!   (base, delta) overlay implementing [`xmark_store::XmlStore`]. A
//!   request pins one snapshot and executes entirely against it; a
//!   concurrent commit publishes a *new* snapshot and never mutates a
//!   pinned one, so torn reads are impossible by construction.
//! * **Writers are serialized** by a commit mutex (single-writer MVCC).
//!   A transaction buffers its operations — [`Transaction::insert_subtree`],
//!   [`Transaction::delete_subtree`], [`Transaction::replace_text`],
//!   [`Transaction::replace_attr`] — and validates + applies them at
//!   commit. First-committer-wins: a commit whose start epoch is stale
//!   fails with [`TxnError::Conflict`] instead of publishing over a
//!   concurrent change.
//! * **Commits maintain indexes incrementally.** The successor
//!   snapshot's [`xmark_store::IndexManager`] is *seeded* from the
//!   predecessor's: element postings are spliced per touched tag
//!   (copy-on-write, `O(touched lists)`), built attribute indexes are
//!   upserted, `cvals` typed-value slots are patched surgically, and
//!   every other value slot (join build sides, lookup indexes, path
//!   materializations) survives **iff** its planner signature mentions
//!   no touched tag or attribute name — signature-keyed invalidation
//!   instead of a full rebuild.
//! * **Durability on backend H.** When the base store exposes a WAL
//!   ([`xmark_store::XmlStore::txn_wal`]), commit appends logical
//!   redo/undo records (`TxnBegin … TxnCommit`) and forces the log
//!   *before* publishing. The protocol is no-steal (uncommitted state
//!   lives only in writer-private memory) and no-force for data pages
//!   (bulkloaded pages stay immutable), so [`recover_paged`] after a
//!   crash is exactly: truncate the torn log tail at the last record
//!   boundary, reopen the page file, and replay the transactions whose
//!   `TxnCommit` made it to disk — in log order, with deterministic
//!   id/rank allocation reproducing the pre-crash snapshot.
//!
//! # Document order under inserts
//!
//! Inserted nodes get fresh ids *above* the base id range, so raw id
//! comparison no longer encodes document order. Every node instead has
//! a `u64` **order rank** — base node `n` at `n << 32`, inserted nodes
//! at ranks subdivided into the gap between their predecessor and
//! successor (rebalanced within a base gap when a run of appends
//! exhausts it). [`SnapshotStore`] surfaces the rank through
//! [`xmark_store::XmlStore::doc_order_key`]; posting lists stay sorted
//! by rank; `Q4`'s `<<` compares ranks.
//!
//! Subtree *stabbing* (the `ordered` element-index fast path) is the
//! one structure inserts degrade: after the first insert the seeded
//! index reports `ordered() == false` and executors fall back to the
//! streamed axis cursors — exactly what a rebuild-from-scratch over the
//! snapshot would report, which is what makes the incremental index
//! answer-identical to a rebuilt one (the oracle test's hinge).
//! Deletion-only histories keep `ordered() == true`: deleted ids are
//! absent from the postings and the stale subtree-end bounds only widen
//! stab ranges over ids that no longer exist.

mod delta;
mod indexes;
mod recovery;
mod snapshot;
mod versioned;

pub use recovery::{recover_paged, RecoveryReport};
pub use snapshot::SnapshotStore;
pub use versioned::{CommitInfo, Transaction, TxnError, VersionedStore};

// Compile-time Send+Sync roster for this crate's XmlStore implementor
// (the store crate's R6 roster cannot name it without a dependency
// cycle, so the assertion lives here).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SnapshotStore>();
    assert_send_sync::<VersionedStore>();
};
