//! Crash recovery for transactional stores on backend H.
//!
//! The commit protocol is no-steal (uncommitted changes never reach
//! disk) and no-force for data (bulkloaded pages stay immutable;
//! committed structural changes live in replayable logical records), so
//! recovery is deliberately simple:
//!
//! 1. scan the WAL prefix that parses cleanly and truncate any torn
//!    tail at the last record boundary;
//! 2. reopen the page file (the bulkloaded document is intact by
//!    construction);
//! 3. replay, in log order, exactly the transactions whose `TxnCommit`
//!    record survived — id and rank allocation are deterministic, so
//!    replay reproduces the pre-crash snapshot bit-for-bit;
//! 4. transactions with a `TxnBegin` but no `TxnCommit` are discarded —
//!    their undo images are never needed because nothing of theirs was
//!    ever published or flushed.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io;
use std::path::Path;
use std::sync::Arc;

use xmark_store::paged::{wal_path_for, LogManager, LogRecord, PagedStore};
use xmark_store::XmlStore;

use crate::versioned::{replay_ops, VersionedStore};

/// What [`recover_paged`] found and did.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Committed transactions replayed onto the reopened store.
    pub replayed: usize,
    /// In-flight transactions discarded (logged but never committed).
    pub discarded: usize,
    /// Torn-tail bytes truncated from the end of the WAL.
    pub truncated_bytes: u64,
}

/// Reopen the paged store at `path` after a crash, repair the WAL, and
/// replay committed transactions. Returns the recovered write head.
pub fn recover_paged(
    path: &Path,
    pool_pages: usize,
) -> io::Result<(Arc<VersionedStore>, RecoveryReport)> {
    let wal_path = wal_path_for(path);
    let (records, valid_len) = LogManager::read_prefix(&wal_path)?;
    let file_len = std::fs::metadata(&wal_path)?.len();
    let truncated_bytes = file_len.saturating_sub(valid_len);
    if truncated_bytes > 0 {
        // Cut the torn tail so the reopened log appends at a record
        // boundary.
        let file = OpenOptions::new().write(true).open(&wal_path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
    }

    let base: Arc<dyn XmlStore> = Arc::new(PagedStore::open(path, pool_pages)?);
    let store = VersionedStore::new(base);

    // Group txn records by id; replay committed groups in log order.
    let mut groups: HashMap<u64, Vec<LogRecord>> = HashMap::new();
    let mut begun: Vec<u64> = Vec::new();
    let mut committed: Vec<u64> = Vec::new();
    for rec in records {
        match rec {
            LogRecord::TxnBegin { txn } => {
                begun.push(txn);
                groups.insert(txn, Vec::new());
            }
            LogRecord::TxnCommit { txn } => committed.push(txn),
            LogRecord::TxnInsert { txn, .. }
            | LogRecord::TxnDelete { txn, .. }
            | LogRecord::TxnSetText { txn, .. }
            | LogRecord::TxnSetAttr { txn, .. } => {
                groups.entry(txn).or_default().push(rec);
            }
            _ => {}
        }
    }
    let mut replayed = 0usize;
    for txn in &committed {
        if let Some(ops) = groups.get(txn) {
            replay_ops(&store, ops).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("replay of committed transaction {txn} failed: {e}"),
                )
            })?;
            replayed += 1;
        }
    }
    let discarded = begun.iter().filter(|txn| !committed.contains(txn)).count();
    Ok((
        store,
        RecoveryReport {
            replayed,
            discarded,
            truncated_bytes,
        },
    ))
}
