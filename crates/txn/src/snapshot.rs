//! [`SnapshotStore`] — one immutable published version: a base store
//! plus a [`DeltaState`] overlay, implementing the full
//! [`XmlStore`] contract.
//!
//! The overlay resolves node-level reads (tag, text, parent, children,
//! attributes) by consulting the delta maps first and delegating to the
//! base otherwise. Subtree-granular *fast paths* (descendant scans,
//! inlined typed values, positional probes) delegate to the base only
//! when the delta's touched-interval gate proves the whole subtree
//! unmodified; in dirty regions they either walk the overlay generically
//! or answer `None`, which the query layer's established outer-`None`
//! contract turns into a generic fallback. Serialization and string
//! values are *not* overridden: the trait defaults recurse through the
//! overlay's cursors, which is exactly what keeps cross-backend
//! byte-identity intact under updates.

use std::sync::Arc;

use xmark_store::paged::{LogManager, PoolStats};
use xmark_store::{
    AttrIter, ChildIter, ChildrenNamed, DescendantsNamed, IndexManager, Node, PlannerCaps,
    PositionSpec, SystemId, XmlStore,
};

use crate::delta::DeltaState;

/// One immutable published version of a [`crate::VersionedStore`]:
/// `(base, delta)` behind the standard read contract. Readers pin a
/// snapshot with an `Arc` and can never observe a concurrent commit.
pub struct SnapshotStore {
    base: Arc<dyn XmlStore>,
    delta: DeltaState,
    indexes: IndexManager,
}

impl SnapshotStore {
    pub(crate) fn assemble(
        base: Arc<dyn XmlStore>,
        delta: DeltaState,
        indexes: IndexManager,
    ) -> SnapshotStore {
        SnapshotStore {
            base,
            delta,
            indexes,
        }
    }

    pub(crate) fn delta(&self) -> &DeltaState {
        &self.delta
    }

    pub(crate) fn base(&self) -> &Arc<dyn XmlStore> {
        &self.base
    }

    /// The commit epoch this snapshot was published at (0 = pristine).
    pub fn epoch(&self) -> u64 {
        self.delta.epoch
    }

    /// Generic overlay walk collecting `tag` descendants of `n` in
    /// document order — the dirty-region fallback for descendant scans.
    fn walk_descendants(&self, n: Node, tag: &str) -> Vec<Node> {
        let mut out = Vec::new();
        let mut stack = vec![self.children_iter(n)];
        while let Some(iter) = stack.last_mut() {
            match iter.next() {
                Some(child) => {
                    if self.tag_of(child) == Some(tag) {
                        out.push(child);
                    }
                    stack.push(self.children_iter(child));
                }
                None => {
                    stack.pop();
                }
            }
        }
        out
    }
}

// lint: allow(R6) Send+Sync is const-asserted in crates/txn/src/lib.rs;
// the store crate's roster cannot name this type without a cycle.
impl XmlStore for SnapshotStore {
    fn system(&self) -> SystemId {
        self.base.system()
    }

    fn root(&self) -> Node {
        self.base.root()
    }

    fn node_count(&self) -> usize {
        self.base.node_count() - self.delta.deleted_base.len() + self.delta.inserted.len()
    }

    fn size_bytes(&self) -> usize {
        self.base.size_bytes() + self.delta.size_bytes()
    }

    fn disk_bytes(&self) -> usize {
        self.base.disk_bytes()
    }

    fn paged_stats(&self) -> Option<PoolStats> {
        self.base.paged_stats()
    }

    fn content_epoch(&self) -> u64 {
        self.delta.epoch
    }

    fn doc_order_key(&self, n: Node) -> u64 {
        self.delta.rank_of(n.0)
    }

    fn txn_wal(&self) -> Option<&LogManager> {
        self.base.txn_wal()
    }

    fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    fn tag_of(&self, n: Node) -> Option<&str> {
        match self.delta.inserted.get(&n.0) {
            Some(node) => node.tag.as_deref(),
            None => self.base.tag_of(n),
        }
    }

    fn parent(&self, n: Node) -> Option<Node> {
        match self.delta.inserted.get(&n.0) {
            Some(node) => Some(Node(node.parent)),
            None => self.base.parent(n),
        }
    }

    fn text(&self, n: Node) -> Option<&str> {
        if let Some(node) = self.delta.inserted.get(&n.0) {
            return node.tag.is_none().then_some(&*node.text);
        }
        if let Some(replaced) = self.delta.text_over.get(&n.0) {
            return Some(replaced);
        }
        self.base.text(n)
    }

    fn is_text_node(&self, n: Node) -> bool {
        match self.delta.inserted.get(&n.0) {
            Some(node) => node.tag.is_none(),
            None => self.base.is_text_node(n),
        }
    }

    fn attribute(&self, n: Node, name: &str) -> Option<String> {
        let find = |attrs: &[(String, String)]| {
            attrs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        };
        if let Some(node) = self.delta.inserted.get(&n.0) {
            return find(&node.attrs);
        }
        if let Some(list) = self.delta.attr_over.get(&n.0) {
            return find(list);
        }
        self.base.attribute(n, name)
    }

    fn children_iter(&self, n: Node) -> ChildIter<'_> {
        if let Some(node) = self.delta.inserted.get(&n.0) {
            return ChildIter::from_vec(node.children.iter().map(|&c| Node(c)).collect());
        }
        if let Some(list) = self.delta.children_over.get(&n.0) {
            return ChildIter::from_vec(list.iter().map(|&c| Node(c)).collect());
        }
        self.base.children_iter(n)
    }

    fn attributes_iter(&self, n: Node) -> AttrIter<'_> {
        if let Some(node) = self.delta.inserted.get(&n.0) {
            return AttrIter::Pairs(node.attrs.iter());
        }
        if let Some(list) = self.delta.attr_over.get(&n.0) {
            return AttrIter::Pairs(list.iter());
        }
        self.base.attributes_iter(n)
    }

    fn children_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> ChildrenNamed<'a> {
        if !self.delta.is_delta(n.0) && !self.delta.children_over.contains_key(&n.0) {
            return self.base.children_named_iter(n, tag);
        }
        ChildrenNamed::from_vec(
            self.children_iter(n)
                .filter(|&c| self.tag_of(c) == Some(tag))
                .collect(),
        )
    }

    fn descendants_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> DescendantsNamed<'a> {
        if self.delta.subtree_clean(n) {
            return self.base.descendants_named_iter(n, tag);
        }
        DescendantsNamed::from_vec(self.walk_descendants(n, tag))
    }

    fn typed_child_value(&self, n: Node, tag: &str) -> Option<Option<String>> {
        if self.delta.subtree_clean(n) {
            return self.base.typed_child_value(n, tag);
        }
        // Dirty region: report "not inlined" so the evaluator computes
        // the value generically through the overlay cursors.
        None
    }

    fn positional_child(&self, n: Node, tag: &str, pos: PositionSpec) -> Option<Option<Node>> {
        if self.delta.subtree_clean(n) {
            return self.base.positional_child(n, tag, pos);
        }
        None
    }

    fn count_descendants_named(&self, n: Node, tag: &str) -> usize {
        if self.delta.subtree_clean(n) {
            return self.base.count_descendants_named(n, tag);
        }
        self.walk_descendants(n, tag).len()
    }

    fn begin_compile(&self) {
        self.base.begin_compile();
    }

    fn compile_step(&self, tag: &str) -> usize {
        self.base.compile_step(tag)
    }

    fn metadata_accesses(&self) -> u64 {
        self.base.metadata_accesses()
    }

    fn planner_caps(&self) -> PlannerCaps {
        let mut caps = self.base.planner_caps();
        if !self.delta.is_empty() {
            // Catalog statistics describe the bulkloaded document;
            // after a commit they are estimates, not exact counts.
            caps.exact_statistics = false;
        }
        caps
    }
}
