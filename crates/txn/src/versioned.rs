//! [`VersionedStore`] — the MVCC write head over a base store — and
//! [`Transaction`], the buffered structural-update API.
//!
//! Writers never mutate published state: a commit clones the current
//! delta (cheap — per-entry payloads are `Arc`-shared), applies the
//! transaction's operations to the private copy, derives the successor
//! snapshot's indexes incrementally, makes the commit durable through
//! the base's WAL when it has one, and only then swaps the published
//! snapshot pointer. Readers pin whatever snapshot was current when
//! they arrived and are never blocked or torn.

use std::fmt;
use std::io;
use std::sync::{Arc, Mutex};

use xmark_store::paged::LogRecord;
use xmark_store::sync::lock;
use xmark_store::{Node, StoreSource, XmlStore};
use xmark_xml::parse_document;

use crate::delta::{DeltaState, InsertedNode};
use crate::indexes::{maintain, Changes, DeletedElem, InsertedElem};
use crate::snapshot::SnapshotStore;

/// Why a transaction could not commit (or an operation was rejected).
#[derive(Debug)]
pub enum TxnError {
    /// Another transaction committed after this one began
    /// (first-committer-wins snapshot isolation).
    Conflict,
    /// The operation referenced a node that does not exist (or was
    /// deleted) in the transaction's view.
    NodeMissing(u32),
    /// The operation needed an element but the node is not one.
    NotAnElement(u32),
    /// The operation needed a text node but the node is not one.
    NotAtext(u32),
    /// The document root cannot be deleted.
    RootImmutable,
    /// The subtree XML handed to an insert failed to parse.
    Xml(xmark_xml::Error),
    /// Rank space between two base nodes is exhausted (needs more than
    /// `2^32` inserted nodes inside one base gap).
    RankSpaceExhausted,
    /// The commit's WAL force failed; nothing was published.
    Io(io::Error),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Conflict => write!(f, "snapshot conflict: a newer epoch was committed"),
            TxnError::NodeMissing(id) => write!(f, "node {id} does not exist in this snapshot"),
            TxnError::NotAnElement(id) => write!(f, "node {id} is not an element"),
            TxnError::NotAtext(id) => write!(f, "node {id} is not a text node"),
            TxnError::RootImmutable => write!(f, "the document root cannot be deleted"),
            TxnError::Xml(e) => write!(f, "insert subtree XML: {e}"),
            TxnError::RankSpaceExhausted => write!(f, "document-order rank space exhausted"),
            TxnError::Io(e) => write!(f, "commit WAL force failed: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// What a successful commit reports back.
#[derive(Debug, Clone, Copy)]
pub struct CommitInfo {
    /// The epoch the new snapshot was published at.
    pub epoch: u64,
    /// The transaction id (stamped on the WAL records for backend H).
    pub txn: u64,
}

/// One buffered structural operation.
pub(crate) enum Op {
    Insert {
        parent: u32,
        xml: String,
    },
    Delete {
        node: u32,
    },
    SetText {
        node: u32,
        text: String,
    },
    SetAttr {
        node: u32,
        name: String,
        value: String,
    },
}

/// A WAL record minus its transaction id (stamped at commit).
enum PendingRecord {
    Insert {
        parent: u32,
        xml: String,
    },
    Delete {
        node: u32,
        undo_xml: String,
    },
    SetText {
        node: u32,
        old: String,
        new: String,
    },
    SetAttr {
        node: u32,
        name: String,
        old: Option<String>,
        new: String,
    },
}

/// The MVCC write head: wraps any backend, publishes immutable
/// [`SnapshotStore`] versions, and serializes writers (see the crate
/// docs for the protocol).
pub struct VersionedStore {
    base: Arc<dyn XmlStore>,
    current: Mutex<Arc<SnapshotStore>>,
    /// Serializes commits; the guarded value is the next transaction id.
    commit_lock: Mutex<u64>,
}

impl VersionedStore {
    /// Wrap `base` for versioned reads and writes. Builds the base
    /// element index up front (the rank and clean-gate math need the
    /// subtree-end array) and carries every index the base has already
    /// built into the epoch-0 snapshot.
    pub fn new(base: Arc<dyn XmlStore>) -> Arc<VersionedStore> {
        let element = {
            let index = base.indexes().element(base.as_ref());
            xmark_store::ElementIndex::from_parts(
                index.shared_postings().clone(),
                index.shared_subtree_end().clone(),
                index.ordered(),
                index.elements(),
            )
        };
        let base_end = Arc::clone(element.shared_subtree_end());
        let floor = base.node_count().max(base_end.len()) as u32;
        let delta = DeltaState::pristine(floor, base_end);
        let manager = xmark_store::IndexManager::seeded(
            Some(element),
            base.indexes().built_attrs(),
            base.indexes().built_values(),
        );
        let snapshot = Arc::new(SnapshotStore::assemble(Arc::clone(&base), delta, manager));
        Arc::new(VersionedStore {
            base,
            current: Mutex::new(snapshot),
            commit_lock: Mutex::new(1),
        })
    }

    /// Pin the currently published snapshot. Never blocks on writers
    /// beyond the pointer swap itself.
    pub fn snapshot(&self) -> Arc<SnapshotStore> {
        Arc::clone(&lock(&self.current))
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// The wrapped base store.
    pub fn base(&self) -> &Arc<dyn XmlStore> {
        &self.base
    }

    /// Begin a transaction against the current snapshot.
    pub fn begin(self: &Arc<Self>) -> Transaction {
        Transaction {
            store: Arc::clone(self),
            start_epoch: self.epoch(),
            ops: Vec::new(),
        }
    }

    /// Apply `ops` as one transaction on top of epoch `start_epoch`.
    /// `log` is false only during crash-recovery replay, which must not
    /// re-append the records it is replaying.
    pub(crate) fn commit_ops(
        &self,
        start_epoch: u64,
        ops: &[Op],
        log: bool,
    ) -> Result<CommitInfo, TxnError> {
        let mut next_txn = lock(&self.commit_lock);
        let cur = self.snapshot();
        if cur.epoch() != start_epoch {
            return Err(TxnError::Conflict);
        }
        let mut builder = DeltaBuilder::new(&cur);
        for op in ops {
            builder.apply(op)?;
        }
        let DeltaBuilder {
            mut delta,
            changes,
            records,
            ..
        } = builder;
        delta.epoch = cur.epoch() + 1;
        let manager = maintain(&cur, &delta, &changes);
        let txn = *next_txn;
        if log {
            if let Some(wal) = self.base.txn_wal() {
                wal.append(&LogRecord::TxnBegin { txn });
                for rec in records {
                    wal.append(&match rec {
                        PendingRecord::Insert { parent, xml } => {
                            LogRecord::TxnInsert { txn, parent, xml }
                        }
                        PendingRecord::Delete { node, undo_xml } => LogRecord::TxnDelete {
                            txn,
                            node,
                            undo_xml,
                        },
                        PendingRecord::SetText { node, old, new } => LogRecord::TxnSetText {
                            txn,
                            node,
                            old,
                            new,
                        },
                        PendingRecord::SetAttr {
                            node,
                            name,
                            old,
                            new,
                        } => LogRecord::TxnSetAttr {
                            txn,
                            node,
                            name,
                            old,
                            new,
                        },
                    });
                }
                wal.append(&LogRecord::TxnCommit { txn });
                // Force-log-at-commit: durable before visible.
                wal.flush_all().map_err(TxnError::Io)?;
            }
        }
        *next_txn = txn + 1;
        let epoch = delta.epoch;
        let snapshot = Arc::new(SnapshotStore::assemble(
            Arc::clone(&self.base),
            delta,
            manager,
        ));
        *lock(&self.current) = snapshot;
        Ok(CommitInfo { epoch, txn })
    }
}

impl StoreSource for VersionedStore {
    fn snapshot(&self) -> Arc<dyn XmlStore> {
        VersionedStore::snapshot(self)
    }
}

/// A buffered read-write transaction. Operations are validated and
/// applied atomically at [`Transaction::commit`]; dropping the
/// transaction aborts it for free (no-steal — nothing was shared).
pub struct Transaction {
    store: Arc<VersionedStore>,
    start_epoch: u64,
    ops: Vec<Op>,
}

impl Transaction {
    /// Queue an insert of `xml` (one well-formed element) as the last
    /// child of `parent`.
    pub fn insert_subtree(&mut self, parent: Node, xml: &str) {
        self.ops.push(Op::Insert {
            parent: parent.0,
            xml: xml.to_string(),
        });
    }

    /// Queue deletion of the subtree rooted at `node`.
    pub fn delete_subtree(&mut self, node: Node) {
        self.ops.push(Op::Delete { node: node.0 });
    }

    /// Queue replacement of text node `node`'s content.
    pub fn replace_text(&mut self, node: Node, text: &str) {
        self.ops.push(Op::SetText {
            node: node.0,
            text: text.to_string(),
        });
    }

    /// Queue setting attribute `name` of element `node` to `value`
    /// (replacing the existing value, or adding the attribute).
    pub fn replace_attr(&mut self, node: Node, name: &str, value: &str) {
        self.ops.push(Op::SetAttr {
            node: node.0,
            name: name.to_string(),
            value: value.to_string(),
        });
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operation is buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validate and apply the buffered operations as one atomic commit,
    /// publishing the successor snapshot on success.
    pub fn commit(self) -> Result<CommitInfo, TxnError> {
        self.store.commit_ops(self.start_epoch, &self.ops, true)
    }
}

/// The writer-private working state of one commit: a copy-on-write
/// clone of the predecessor delta plus the change journal the index
/// maintenance and WAL passes consume.
struct DeltaBuilder<'a> {
    base: &'a Arc<dyn XmlStore>,
    delta: DeltaState,
    changes: Changes,
    records: Vec<PendingRecord>,
}

impl<'a> DeltaBuilder<'a> {
    fn new(cur: &'a SnapshotStore) -> DeltaBuilder<'a> {
        DeltaBuilder {
            base: cur.base(),
            delta: cur.delta().clone(),
            changes: Changes::default(),
            records: Vec::new(),
        }
    }

    // ---- overlay reads against the in-progress state -----------------

    fn exists(&self, id: u32) -> bool {
        if self.delta.is_delta(id) {
            self.delta.inserted.contains_key(&id)
        } else {
            (id as usize) < self.delta.floor as usize && !self.delta.deleted_base.contains(&id)
        }
    }

    fn tag_of(&self, id: u32) -> Option<String> {
        match self.delta.inserted.get(&id) {
            Some(node) => node.tag.as_deref().map(str::to_string),
            None => self.base.tag_of(Node(id)).map(str::to_string),
        }
    }

    fn text_of(&self, id: u32) -> Option<String> {
        if let Some(node) = self.delta.inserted.get(&id) {
            return node.tag.is_none().then(|| node.text.to_string());
        }
        if let Some(replaced) = self.delta.text_over.get(&id) {
            return Some(replaced.to_string());
        }
        self.base.text(Node(id)).map(str::to_string)
    }

    fn is_text(&self, id: u32) -> bool {
        match self.delta.inserted.get(&id) {
            Some(node) => node.tag.is_none(),
            None => self.base.is_text_node(Node(id)),
        }
    }

    fn attrs_of(&self, id: u32) -> Vec<(String, String)> {
        if let Some(node) = self.delta.inserted.get(&id) {
            return node.attrs.clone();
        }
        if let Some(list) = self.delta.attr_over.get(&id) {
            return list.as_ref().clone();
        }
        self.base.attributes(Node(id))
    }

    fn children_of(&self, id: u32) -> Vec<u32> {
        if let Some(node) = self.delta.inserted.get(&id) {
            return node.children.clone();
        }
        if let Some(list) = self.delta.children_over.get(&id) {
            return list.as_ref().clone();
        }
        self.base.children(Node(id)).iter().map(|n| n.0).collect()
    }

    fn parent_of(&self, id: u32) -> Option<u32> {
        match self.delta.inserted.get(&id) {
            Some(node) => Some(node.parent),
            None => self.base.parent(Node(id)).map(|n| n.0),
        }
    }

    /// The nearest base ancestor-or-self of `id` — the modification
    /// anchor the clean gate records.
    fn base_anchor(&self, id: u32) -> u32 {
        let mut x = id;
        while self.delta.is_delta(x) {
            match self.parent_of(x) {
                Some(p) => x = p,
                None => break,
            }
        }
        x
    }

    /// Record the element tags on the path from `id` (inclusive) to the
    /// root — paths and join keys mentioning any of them may observe
    /// the change.
    fn touch_ancestor_tags(&mut self, id: u32) {
        let mut x = Some(id);
        while let Some(node) = x {
            if let Some(tag) = self.tag_of(node) {
                self.changes.touched_tags.insert(tag);
            }
            x = self.parent_of(node);
        }
    }

    // ---- rank allocation --------------------------------------------

    fn last_rank_in_subtree(&self, id: u32) -> u64 {
        let mut x = id;
        loop {
            match self.children_of(x).last() {
                Some(&c) => x = c,
                None => return self.delta.rank_of(x),
            }
        }
    }

    fn successor_rank(&self, id: u32) -> u64 {
        let mut x = id;
        loop {
            let Some(p) = self.parent_of(x) else {
                return u64::MAX;
            };
            let kids = self.children_of(p);
            if let Some(pos) = kids.iter().position(|&c| c == x) {
                if pos + 1 < kids.len() {
                    return self.delta.rank_of(kids[pos + 1]);
                }
            }
            x = p;
        }
    }

    /// Allocate `k` fresh document-order ranks for a subtree appended
    /// as the last child of `parent`, rebalancing the surrounding delta
    /// ranks when the tail gap is exhausted.
    fn alloc_ranks(&mut self, parent: u32, k: usize) -> Result<Vec<u64>, TxnError> {
        let lo = self.last_rank_in_subtree(parent);
        let hi = self.successor_rank(parent);
        let need = k as u64;
        if hi - lo > need {
            let step = ((hi - lo) / (need + 1)).clamp(1, 1 << 24);
            return Ok((1..=need).map(|i| lo + i * step).collect());
        }
        // Tail gap exhausted: re-spread every delta rank in the base
        // gap (relative order unchanged — only the spacing moves).
        let floor_rank = (lo >> 32) << 32;
        let mut movers: Vec<u32> = self
            .delta
            .inserted
            .iter()
            .filter(|(_, node)| node.rank > floor_rank && node.rank < hi)
            .map(|(&id, _)| id)
            .collect();
        movers.sort_by_key(|&id| self.delta.rank_of(id));
        let total = movers.len() as u64 + need;
        let step = (hi - floor_rank) / (total + 1);
        if step == 0 {
            return Err(TxnError::RankSpaceExhausted);
        }
        for (j, id) in movers.iter().enumerate() {
            if let Some(node) = self.delta.inserted.get_mut(id) {
                Arc::make_mut(node).rank = floor_rank + step * (j as u64 + 1);
            }
        }
        let first = movers.len() as u64 + 1;
        Ok((0..need).map(|i| floor_rank + step * (first + i)).collect())
    }

    // ---- operations --------------------------------------------------

    fn apply(&mut self, op: &Op) -> Result<(), TxnError> {
        match op {
            Op::Insert { parent, xml } => self.apply_insert(*parent, xml),
            Op::Delete { node } => self.apply_delete(*node),
            Op::SetText { node, text } => self.apply_set_text(*node, text),
            Op::SetAttr { node, name, value } => self.apply_set_attr(*node, name, value),
        }
    }

    fn apply_insert(&mut self, parent: u32, xml: &str) -> Result<(), TxnError> {
        if !self.exists(parent) {
            return Err(TxnError::NodeMissing(parent));
        }
        if self.is_text(parent) {
            return Err(TxnError::NotAnElement(parent));
        }
        let doc = parse_document(xml).map_err(TxnError::Xml)?;
        let doc_root = doc.try_root().ok_or(TxnError::NotAnElement(parent))?;

        // Pre-order listing of the fragment's nodes.
        let mut order = vec![doc_root];
        let mut i = 0;
        while i < order.len() {
            order.extend(doc.children(order[i]));
            i += 1;
        }
        let k = order.len();
        let ranks = self.alloc_ranks(parent, k)?;

        // Deterministic id assignment (replay reproduces these).
        let first_id = self.delta.next_id;
        self.delta.next_id += k as u32;
        let id_of = |doc_node: xmark_xml::NodeId| -> u32 {
            // Pre-order position, resolved by scan: fragments are small.
            first_id + order.iter().position(|&d| d == doc_node).unwrap_or(0) as u32
        };

        for (pos, &doc_node) in order.iter().enumerate() {
            let id = first_id + pos as u32;
            let node_parent = match doc.parent(doc_node) {
                Some(p) => id_of(p),
                None => parent,
            };
            let (tag, text, attrs) = if doc.is_element(doc_node) {
                let attrs: Vec<(String, String)> = doc
                    .attributes(doc_node)
                    .iter()
                    .map(|(sym, value)| (doc.interner().resolve(*sym).to_string(), value.clone()))
                    .collect();
                (
                    Some(doc.tag_name(doc_node).to_string().into_boxed_str()),
                    String::new().into_boxed_str(),
                    attrs,
                )
            } else {
                (
                    None,
                    doc.text(doc_node)
                        .unwrap_or_default()
                        .to_string()
                        .into_boxed_str(),
                    Vec::new(),
                )
            };
            let children: Vec<u32> = doc.children(doc_node).map(id_of).collect();
            self.delta.inserted.insert(
                id,
                Arc::new(InsertedNode {
                    tag,
                    text,
                    attrs,
                    parent: node_parent,
                    children,
                    rank: ranks[pos],
                }),
            );
        }

        // Hook the fragment root into the parent's child list.
        let root_id = first_id;
        if let Some(node) = self.delta.inserted.get_mut(&parent) {
            Arc::make_mut(node).children.push(root_id);
        } else {
            let mut kids = self.children_of(parent);
            kids.push(root_id);
            self.delta.children_over.insert(parent, Arc::new(kids));
        }

        // Gate + change journal.
        let anchor = self.base_anchor(parent);
        self.delta.touch(anchor, anchor);
        self.touch_ancestor_tags(parent);
        for (pos, _) in order.iter().enumerate() {
            let id = first_id + pos as u32;
            let Some(node) = self.delta.inserted.get(&id).cloned() else {
                continue;
            };
            let Some(tag) = node.tag.as_deref() else {
                continue;
            };
            self.changes.touched_tags.insert(tag.to_string());
            for (name, _) in &node.attrs {
                self.changes.touched_tags.insert(name.clone());
            }
            let text_children = node
                .children
                .iter()
                .copied()
                .filter(|&c| self.is_text(c))
                .collect();
            self.changes.inserted_elems.push(InsertedElem {
                id,
                tag: tag.to_string(),
                parent: node.parent,
                attrs: node.attrs.clone(),
                text_children,
            });
        }
        self.changes.had_insert = true;
        self.records.push(PendingRecord::Insert {
            parent,
            xml: xml.to_string(),
        });
        Ok(())
    }

    fn apply_delete(&mut self, node: u32) -> Result<(), TxnError> {
        if !self.exists(node) {
            return Err(TxnError::NodeMissing(node));
        }
        let Some(parent) = self.parent_of(node) else {
            return Err(TxnError::RootImmutable);
        };

        let mut undo_xml = String::new();
        self.serialize_subtree(node, &mut undo_xml);

        // Collect the whole subtree (pre-order) through the overlay.
        let mut order = vec![node];
        let mut i = 0;
        while i < order.len() {
            order.extend(self.children_of(order[i]));
            i += 1;
        }

        self.touch_ancestor_tags(parent);
        for &id in &order {
            if let Some(tag) = self.tag_of(id) {
                self.changes.touched_tags.insert(tag.clone());
                let attrs = self.attrs_of(id);
                for (name, _) in &attrs {
                    self.changes.touched_tags.insert(name.clone());
                }
                self.changes.deleted_elems.push(DeletedElem {
                    id,
                    tag,
                    parent: self.parent_of(id).unwrap_or(parent),
                    attrs,
                });
            } else {
                let text_parent = self.parent_of(id).unwrap_or(parent);
                self.changes.deleted_texts.push((id, text_parent));
            }
            self.changes.deleted_ids.insert(id);
        }

        // Unhook from the parent, then tombstone / drop each node.
        if let Some(pnode) = self.delta.inserted.get_mut(&parent) {
            Arc::make_mut(pnode).children.retain(|&c| c != node);
        } else {
            let kids: Vec<u32> = self
                .children_of(parent)
                .into_iter()
                .filter(|&c| c != node)
                .collect();
            self.delta.children_over.insert(parent, Arc::new(kids));
        }
        for &id in &order {
            if self.delta.is_delta(id) {
                self.delta.inserted.remove(&id);
            } else {
                self.delta.deleted_base.insert(id);
                self.delta.text_over.remove(&id);
                self.delta.attr_over.remove(&id);
                self.delta.children_over.remove(&id);
            }
        }

        // Gate: the deleted base range plus the (possibly delta) parent
        // whose child list changed.
        if !self.delta.is_delta(node) {
            let end = self.delta.base_subtree_end(node);
            self.delta.touch(node, end);
        }
        let anchor = self.base_anchor(parent);
        self.delta.touch(anchor, anchor);

        self.records.push(PendingRecord::Delete { node, undo_xml });
        Ok(())
    }

    fn apply_set_text(&mut self, node: u32, text: &str) -> Result<(), TxnError> {
        if !self.exists(node) {
            return Err(TxnError::NodeMissing(node));
        }
        if !self.is_text(node) {
            return Err(TxnError::NotAtext(node));
        }
        let old = self.text_of(node).unwrap_or_default();
        if let Some(inserted) = self.delta.inserted.get_mut(&node) {
            Arc::make_mut(inserted).text = text.to_string().into_boxed_str();
        } else {
            self.delta.text_over.insert(node, Arc::from(text));
        }
        let anchor = self.base_anchor(node);
        self.delta.touch(anchor, anchor);
        self.touch_ancestor_tags(node);
        self.records.push(PendingRecord::SetText {
            node,
            old,
            new: text.to_string(),
        });
        Ok(())
    }

    fn apply_set_attr(&mut self, node: u32, name: &str, value: &str) -> Result<(), TxnError> {
        if !self.exists(node) {
            return Err(TxnError::NodeMissing(node));
        }
        if self.tag_of(node).is_none() {
            return Err(TxnError::NotAnElement(node));
        }
        let mut attrs = self.attrs_of(node);
        let old = attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone());
        match attrs.iter_mut().find(|(k, _)| k == name) {
            Some(slot) => slot.1 = value.to_string(),
            None => attrs.push((name.to_string(), value.to_string())),
        }
        if let Some(inserted) = self.delta.inserted.get_mut(&node) {
            Arc::make_mut(inserted).attrs = attrs;
        } else {
            self.delta.attr_over.insert(node, Arc::new(attrs));
        }
        let anchor = self.base_anchor(node);
        self.delta.touch(anchor, anchor);
        self.touch_ancestor_tags(node);
        self.changes.touched_tags.insert(name.to_string());
        self.changes
            .attr_sets
            .push((node, name.to_string(), old.clone(), value.to_string()));
        self.records.push(PendingRecord::SetAttr {
            node,
            name: name.to_string(),
            old,
            new: value.to_string(),
        });
        Ok(())
    }

    /// Serialize the subtree at `id` through the overlay — the undo
    /// image logged with a delete.
    fn serialize_subtree(&self, id: u32, out: &mut String) {
        if let Some(text) = self.text_of(id) {
            if self.is_text(id) {
                xmark_xml::escape::escape_text_into(&text, out);
                return;
            }
        }
        let Some(tag) = self.tag_of(id) else {
            return;
        };
        out.push('<');
        out.push_str(&tag);
        for (name, value) in self.attrs_of(id) {
            out.push(' ');
            out.push_str(&name);
            out.push_str("=\"");
            xmark_xml::escape::escape_attr_into(&value, out);
            out.push('"');
        }
        let kids = self.children_of(id);
        if kids.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for child in kids {
            self.serialize_subtree(child, out);
        }
        out.push_str("</");
        out.push_str(&tag);
        out.push('>');
    }
}

/// Used by crash recovery to re-apply logged operations without
/// re-logging them.
pub(crate) fn replay_ops(
    store: &Arc<VersionedStore>,
    records: &[LogRecord],
) -> Result<CommitInfo, TxnError> {
    let ops: Vec<Op> = records
        .iter()
        .filter_map(|rec| match rec {
            LogRecord::TxnInsert { parent, xml, .. } => Some(Op::Insert {
                parent: *parent,
                xml: xml.clone(),
            }),
            LogRecord::TxnDelete { node, .. } => Some(Op::Delete { node: *node }),
            LogRecord::TxnSetText { node, new, .. } => Some(Op::SetText {
                node: *node,
                text: new.clone(),
            }),
            LogRecord::TxnSetAttr {
                node, name, new, ..
            } => Some(Op::SetAttr {
                node: *node,
                name: name.clone(),
                value: new.clone(),
            }),
            _ => None,
        })
        .collect();
    store.commit_ops(store.epoch(), &ops, false)
}
