//! Arena-allocated document object model.
//!
//! Design notes:
//!
//! * Nodes live in a single `Vec`; a [`NodeId`] is an index. Documents built
//!   by the parser allocate nodes in depth-first pre-order, so **comparing
//!   two `NodeId`s compares document order** — exactly what XMark query Q4's
//!   `BEFORE` (`<<`) operator needs, for free.
//! * Element and attribute names are interned ([`Sym`]), so tag comparisons
//!   during query evaluation are integer comparisons and the per-node
//!   footprint stays small (the paper's §2 point (2): strings dominate XML;
//!   we keep them out of the tree skeleton).
//! * Attribute *values* and text content are owned strings: XMark queries
//!   cast them to numbers at runtime (§7: "all character data … were stored
//!   as strings and cast at runtime"), which we faithfully reproduce.

use std::collections::HashMap;
use std::fmt;

/// Interned name (element tag or attribute name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// Index of a node within its [`Document`] arena.
///
/// Ordering of `NodeId`s produced by the parser is document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// An element with an interned tag name.
    Element {
        /// Interned tag name.
        name: Sym,
    },
    /// A text node.
    Text {
        /// Character data (already unescaped).
        text: String,
    },
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
    first_child: Option<NodeId>,
    last_child: Option<NodeId>,
    next_sibling: Option<NodeId>,
    /// Attributes, only non-empty for elements. Stored inline because the
    /// XMark schema averages < 1 attribute per element.
    attrs: Vec<(Sym, String)>,
}

/// String interner shared by a document.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    lookup: HashMap<String, Sym>,
}

impl Interner {
    /// Intern `name`, returning its symbol.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.lookup.get(name) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        self.names.push(name.to_string());
        self.lookup.insert(name.to_string(), sym);
        sym
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Look up a name without interning it.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.lookup.get(name).copied()
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// An XML document: an arena of nodes plus an interner.
///
/// A document always has a root *element* once parsing succeeds; documents
/// under construction may temporarily have none.
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: Vec<Node>,
    interner: Interner,
    root: Option<NodeId>,
}

impl Document {
    /// Create an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (elements + text nodes) in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The interner used for element/attribute names.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner (used by query compilation to intern
    /// the tag names appearing in path expressions).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// The root element.
    ///
    /// # Panics
    /// Panics if the document has no root yet.
    pub fn root_element(&self) -> NodeId {
        self.root.expect("document has no root element")
    }

    /// The root element, if set.
    pub fn try_root(&self) -> Option<NodeId> {
        self.root
    }

    /// Mark `node` as the document root.
    pub fn set_root(&mut self, node: NodeId) {
        self.root = Some(node);
    }

    /// Allocate a new element node with tag `name` (interning it).
    pub fn create_element(&mut self, name: &str) -> NodeId {
        let sym = self.interner.intern(name);
        self.create_element_sym(sym)
    }

    /// Allocate a new element node with an already-interned tag.
    pub fn create_element_sym(&mut self, name: Sym) -> NodeId {
        self.push_node(Node {
            kind: NodeKind::Element { name },
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            attrs: Vec::new(),
        })
    }

    /// Allocate a new text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.push_node(Node {
            kind: NodeKind::Text { text: text.into() },
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            attrs: Vec::new(),
        })
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Append `child` as the last child of `parent`.
    ///
    /// # Panics
    /// Panics if `child` already has a parent.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert!(
            self.nodes[child.index()].parent.is_none(),
            "node already attached"
        );
        self.nodes[child.index()].parent = Some(parent);
        match self.nodes[parent.index()].last_child {
            Some(last) => {
                self.nodes[last.index()].next_sibling = Some(child);
                self.nodes[parent.index()].last_child = Some(child);
            }
            None => {
                let p = &mut self.nodes[parent.index()];
                p.first_child = Some(child);
                p.last_child = Some(child);
            }
        }
    }

    /// Set attribute `name` = `value` on `element` (appending; XMark never
    /// writes duplicate attribute names).
    pub fn set_attribute(&mut self, element: NodeId, name: &str, value: impl Into<String>) {
        let sym = self.interner.intern(name);
        self.nodes[element.index()].attrs.push((sym, value.into()));
    }

    /// The node's kind.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node.index()].kind
    }

    /// Whether the node is an element.
    pub fn is_element(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.index()].kind, NodeKind::Element { .. })
    }

    /// Interned tag of an element node, or `None` for text nodes.
    pub fn tag(&self, node: NodeId) -> Option<Sym> {
        match self.nodes[node.index()].kind {
            NodeKind::Element { name } => Some(name),
            NodeKind::Text { .. } => None,
        }
    }

    /// Tag name of an element node as a string.
    ///
    /// # Panics
    /// Panics on text nodes.
    pub fn tag_name(&self, node: NodeId) -> &str {
        self.interner
            .resolve(self.tag(node).expect("tag_name on a text node"))
    }

    /// Text of a text node, or `None` for elements.
    pub fn text(&self, node: NodeId) -> Option<&str> {
        match &self.nodes[node.index()].kind {
            NodeKind::Text { text } => Some(text),
            NodeKind::Element { .. } => None,
        }
    }

    /// Parent node.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// First child.
    pub fn first_child(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].first_child
    }

    /// Next sibling.
    pub fn next_sibling(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].next_sibling
    }

    /// Attributes of an element in document order.
    pub fn attributes(&self, node: NodeId) -> &[(Sym, String)] {
        &self.nodes[node.index()].attrs
    }

    /// Look up an attribute by name.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        let sym = self.interner.get(name)?;
        self.attribute_sym(node, sym)
    }

    /// Look up an attribute by interned name.
    pub fn attribute_sym(&self, node: NodeId, name: Sym) -> Option<&str> {
        self.nodes[node.index()]
            .attrs
            .iter()
            .find(|(s, _)| *s == name)
            .map(|(_, v)| v.as_str())
    }

    /// Iterate over the children of `node` in document order.
    pub fn children(&self, node: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.nodes[node.index()].first_child,
        }
    }

    /// Iterate over the element children of `node`.
    pub fn child_elements(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(node).filter(move |&c| self.is_element(c))
    }

    /// Iterate over element children with tag `name`.
    pub fn children_named(&self, node: NodeId, name: Sym) -> impl Iterator<Item = NodeId> + '_ {
        self.children(node)
            .filter(move |&c| self.tag(c) == Some(name))
    }

    /// Iterate over all descendants of `node` (excluding `node` itself) in
    /// document order.
    pub fn descendants(&self, node: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            origin: node,
            next: self.nodes[node.index()].first_child,
        }
    }

    /// The concatenated text of all descendant text nodes ("string value").
    pub fn string_value(&self, node: NodeId) -> String {
        let mut out = String::new();
        self.string_value_into(node, &mut out);
        out
    }

    /// Append the string value of `node` to `out`.
    pub fn string_value_into(&self, node: NodeId, out: &mut String) {
        match &self.nodes[node.index()].kind {
            NodeKind::Text { text } => out.push_str(text),
            NodeKind::Element { .. } => {
                for child in self.children(node) {
                    self.string_value_into(child, out);
                }
            }
        }
    }

    /// The text directly contained in `node` (children only, not deeper) —
    /// the common case for XMark leaf elements like `<name>` and `<price>`.
    pub fn direct_text(&self, node: NodeId) -> Option<&str> {
        let mut found = None;
        for child in self.children(node) {
            if let Some(t) = self.text(child) {
                if found.is_some() {
                    // Multiple text children: fall back to string_value
                    // semantics via the caller.
                    return None;
                }
                found = Some(t);
            }
        }
        found
    }

    /// Depth of `node` (root element has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// True iff `a` strictly precedes `b` in document order. Valid for
    /// parser-built documents, where node ids are pre-order.
    pub fn doc_order_lt(&self, a: NodeId, b: NodeId) -> bool {
        a < b
    }

    /// Approximate resident size of the DOM in bytes, used by the Table 1
    /// ("database sizes") reproduction for the main-memory backends.
    pub fn heap_size_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<Node>();
        for node in &self.nodes {
            total += node.attrs.capacity() * std::mem::size_of::<(Sym, String)>();
            for (_, v) in &node.attrs {
                total += v.capacity();
            }
            if let NodeKind::Text { text } = &node.kind {
                total += text.capacity();
            }
        }
        for name in &self.interner.names {
            total += name.capacity();
        }
        total
    }

    /// All node ids in arena (= document) order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }
}

/// Iterator over a node's children.
pub struct Children<'d> {
    doc: &'d Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.next_sibling(cur);
        Some(cur)
    }
}

/// Pre-order iterator over a node's descendants.
pub struct Descendants<'d> {
    doc: &'d Document,
    origin: NodeId,
    next: Option<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        // Compute successor in pre-order, not escaping the origin subtree.
        let mut succ = self.doc.first_child(cur);
        if succ.is_none() {
            let mut up = cur;
            while up != self.origin {
                if let Some(sib) = self.doc.next_sibling(up) {
                    succ = Some(sib);
                    break;
                }
                up = self.doc.parent(up).expect("descendant must have parent");
            }
        }
        self.next = succ;
        Some(cur)
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_root() {
            Some(root) => write!(f, "{}", crate::serialize::serialize_node(self, root)),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let root = doc.create_element("site");
        let people = doc.create_element("people");
        let person = doc.create_element("person");
        doc.set_attribute(person, "id", "person0");
        let name = doc.create_element("name");
        let text = doc.create_text("Alice");
        doc.append_child(root, people);
        doc.append_child(people, person);
        doc.append_child(person, name);
        doc.append_child(name, text);
        doc.set_root(root);
        (doc, root, person, name)
    }

    #[test]
    fn builds_and_navigates_tree() {
        let (doc, root, person, name) = sample();
        assert_eq!(doc.tag_name(root), "site");
        assert_eq!(doc.parent(name), Some(person));
        assert_eq!(doc.children(root).count(), 1);
        assert_eq!(doc.attribute(person, "id"), Some("person0"));
        assert_eq!(doc.attribute(person, "missing"), None);
    }

    #[test]
    fn string_value_concatenates_text() {
        let (doc, root, ..) = sample();
        assert_eq!(doc.string_value(root), "Alice");
    }

    #[test]
    fn direct_text_reads_leaf_elements() {
        let (doc, _, _, name) = sample();
        assert_eq!(doc.direct_text(name), Some("Alice"));
    }

    #[test]
    fn descendants_are_preorder() {
        let (doc, root, ..) = sample();
        let tags: Vec<String> = doc
            .descendants(root)
            .map(|n| match doc.kind(n) {
                NodeKind::Element { .. } => doc.tag_name(n).to_string(),
                NodeKind::Text { text } => format!("#{text}"),
            })
            .collect();
        assert_eq!(tags, vec!["people", "person", "name", "#Alice"]);
    }

    #[test]
    fn descendants_stop_at_subtree_boundary() {
        let mut doc = Document::new();
        let root = doc.create_element("r");
        let a = doc.create_element("a");
        let a1 = doc.create_element("a1");
        let b = doc.create_element("b");
        doc.append_child(root, a);
        doc.append_child(a, a1);
        doc.append_child(root, b);
        doc.set_root(root);
        let descs: Vec<NodeId> = doc.descendants(a).collect();
        assert_eq!(descs, vec![a1]);
    }

    #[test]
    fn node_ids_are_document_order_for_builder_preorder() {
        let (doc, root, person, name) = sample();
        assert!(doc.doc_order_lt(root, person));
        assert!(doc.doc_order_lt(person, name));
    }

    #[test]
    fn depth_counts_ancestors() {
        let (doc, root, person, name) = sample();
        assert_eq!(doc.depth(root), 0);
        assert_eq!(doc.depth(person), 2);
        assert_eq!(doc.depth(name), 3);
    }

    #[test]
    fn interner_dedupes() {
        let mut i = Interner::default();
        let a = i.intern("item");
        let b = i.intern("item");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
        assert_eq!(i.resolve(a), "item");
    }

    #[test]
    fn heap_size_is_positive_and_grows() {
        let (doc, ..) = sample();
        let small = doc.heap_size_bytes();
        assert!(small > 0);
        let mut bigger = doc.clone();
        let extra = bigger.create_text("x".repeat(10_000));
        let root = bigger.root_element();
        bigger.append_child(root, extra);
        assert!(bigger.heap_size_bytes() > small + 9_000);
    }
}
