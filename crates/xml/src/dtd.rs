//! A DTD (document type definition) parser.
//!
//! §4.4 of the paper: "A DTD and schema information are provided to allow
//! for more efficient mappings. However, we stress that this is additional
//! information that may be exploited." System C is the store that exploits
//! it — it "reads in a DTD and lets the user generate an optimized database
//! schema" (§7). This module parses the subset of DTD syntax the XMark
//! `auction.dtd` uses: `<!ELEMENT …>` with sequence, choice, mixed and
//! EMPTY content, and `<!ATTLIST …>` with CDATA/ID/IDREF attributes.

use std::collections::HashMap;

use crate::error::{Error, Result};

/// How often a child may occur in a sequence content model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurrence {
    /// Exactly once.
    One,
    /// `?` — at most once.
    Optional,
    /// `*` — any number.
    Star,
    /// `+` — at least once.
    Plus,
}

impl Occurrence {
    /// True if the child appears at most once — the inlining precondition.
    pub fn at_most_once(self) -> bool {
        matches!(self, Occurrence::One | Occurrence::Optional)
    }
}

/// One child reference in a sequence model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildSpec {
    /// Child element name.
    pub name: String,
    /// Occurrence modifier.
    pub occurrence: Occurrence,
}

/// An element's content model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// `EMPTY`.
    Empty,
    /// `(#PCDATA)` — text only.
    PcdataOnly,
    /// `(#PCDATA | a | b)*` — mixed content.
    Mixed(Vec<String>),
    /// `(a, b?, c*)` — a sequence of children.
    Sequence(Vec<ChildSpec>),
    /// `(a | b)` with an optional occurrence on the whole group.
    Choice(Vec<String>, Occurrence),
    /// `ANY`.
    Any,
}

/// Attribute types the benchmark DTD uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Free text.
    Cdata,
    /// Unique identifier.
    Id,
    /// Reference to an ID.
    Idref,
}

/// One declared attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
    /// `#REQUIRED` (true) vs `#IMPLIED` (false).
    pub required: bool,
}

/// A parsed DTD.
#[derive(Debug, Clone, Default)]
pub struct Dtd {
    elements: HashMap<String, ContentModel>,
    attributes: HashMap<String, Vec<AttrDecl>>,
    /// Declaration order of elements (deterministic schema derivation).
    order: Vec<String>,
}

impl Dtd {
    /// Parse DTD text (internal-subset syntax, comments allowed).
    pub fn parse(text: &str) -> Result<Dtd> {
        let mut dtd = Dtd::default();
        let mut rest = text;
        while let Some(start) = rest.find("<!") {
            rest = &rest[start..];
            if let Some(comment) = rest.strip_prefix("<!--") {
                let end = comment.find("-->").ok_or(Error::UnexpectedEof {
                    context: "DTD comment",
                })?;
                rest = &comment[end + 3..];
                continue;
            }
            let end = rest.find('>').ok_or(Error::UnexpectedEof {
                context: "DTD declaration",
            })?;
            let decl = &rest[2..end];
            rest = &rest[end + 1..];
            if let Some(body) = decl.strip_prefix("ELEMENT") {
                let (name, model) = parse_element_decl(body.trim())?;
                if !dtd.elements.contains_key(&name) {
                    dtd.order.push(name.clone());
                }
                dtd.elements.insert(name, model);
            } else if let Some(body) = decl.strip_prefix("ATTLIST") {
                let (name, attrs) = parse_attlist_decl(body.trim())?;
                dtd.attributes.entry(name).or_default().extend(attrs);
            }
            // Other declaration kinds (ENTITY, NOTATION) are outside the
            // benchmark's restricted XML subset (§4.4) and are skipped.
        }
        Ok(dtd)
    }

    /// Content model of an element.
    pub fn element(&self, name: &str) -> Option<&ContentModel> {
        self.elements.get(name)
    }

    /// Declared attributes of an element.
    pub fn attributes(&self, name: &str) -> &[AttrDecl] {
        self.attributes.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Element names in declaration order.
    pub fn element_names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }

    /// Number of declared elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether no elements are declared.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Is `name` a text-only element (`(#PCDATA)`)?
    pub fn is_pcdata_only(&self, name: &str) -> bool {
        matches!(self.element(name), Some(ContentModel::PcdataOnly))
    }

    /// The **shared-inlining derivation** (Shanmugasundaram et al. \[23\],
    /// which the paper credits for System C's mapping): for every element
    /// with a sequence content model, the children that are text-only and
    /// occur at most once can be inlined as columns of the parent's
    /// relation. Returns `(parent, inlined children)` pairs in declaration
    /// order, parents without inlinable children omitted.
    pub fn derive_inlined_schema(&self) -> Vec<(String, Vec<String>)> {
        let mut out = Vec::new();
        for name in &self.order {
            let Some(ContentModel::Sequence(children)) = self.elements.get(name) else {
                continue;
            };
            let inlined: Vec<String> = children
                .iter()
                .filter(|c| c.occurrence.at_most_once() && self.is_pcdata_only(&c.name))
                .map(|c| c.name.clone())
                .collect();
            if !inlined.is_empty() {
                out.push((name.clone(), inlined));
            }
        }
        out
    }
}

fn parse_name(s: &str) -> Result<(&str, &str)> {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == ':'))
        .unwrap_or(s.len());
    if end == 0 {
        return Err(Error::Syntax {
            offset: 0,
            message: format!("expected a name in DTD declaration near `{}`", truncate(s)),
        });
    }
    Ok((&s[..end], &s[end..]))
}

fn truncate(s: &str) -> &str {
    &s[..s.len().min(24)]
}

fn parse_element_decl(body: &str) -> Result<(String, ContentModel)> {
    let (name, rest) = parse_name(body)?;
    let spec = rest.trim();
    let model = if spec == "EMPTY" {
        ContentModel::Empty
    } else if spec == "ANY" {
        ContentModel::Any
    } else if spec.starts_with('(') {
        parse_content_group(spec)?
    } else {
        return Err(Error::Syntax {
            offset: 0,
            message: format!(
                "unrecognized content model `{}` for <!ELEMENT {name}>",
                truncate(spec)
            ),
        });
    };
    Ok((name.to_string(), model))
}

fn parse_content_group(spec: &str) -> Result<ContentModel> {
    // Find the matching close paren of the leading open paren.
    let bytes = spec.as_bytes();
    debug_assert_eq!(bytes[0], b'(');
    let mut depth = 0usize;
    let mut close = None;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close.ok_or(Error::UnexpectedEof {
        context: "DTD content model",
    })?;
    let inner = &spec[1..close];
    let suffix = spec[close + 1..].trim();
    let group_occurrence = match suffix {
        "" => Occurrence::One,
        "?" => Occurrence::Optional,
        "*" => Occurrence::Star,
        "+" => Occurrence::Plus,
        other => {
            return Err(Error::Syntax {
                offset: 0,
                message: format!(
                    "unexpected trailing `{}` after content model",
                    truncate(other)
                ),
            })
        }
    };

    let normalized: String = inner.split_whitespace().collect::<Vec<_>>().join(" ");
    if normalized == "#PCDATA" {
        return Ok(ContentModel::PcdataOnly);
    }
    if normalized.starts_with("#PCDATA") {
        // Mixed content: (#PCDATA | a | b)*
        let names = normalized
            .split('|')
            .skip(1)
            .map(|p| p.trim().to_string())
            .collect();
        return Ok(ContentModel::Mixed(names));
    }
    if normalized.contains('|') {
        let names = normalized
            .split('|')
            .map(|p| p.trim().trim_end_matches(['?', '*', '+']).to_string())
            .collect();
        return Ok(ContentModel::Choice(names, group_occurrence));
    }
    // Sequence (the auction DTD has no nested groups).
    let mut children = Vec::new();
    for part in normalized.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, occurrence) = match part.as_bytes().last() {
            Some(b'?') => (&part[..part.len() - 1], Occurrence::Optional),
            Some(b'*') => (&part[..part.len() - 1], Occurrence::Star),
            Some(b'+') => (&part[..part.len() - 1], Occurrence::Plus),
            _ => (part, Occurrence::One),
        };
        children.push(ChildSpec {
            name: name.trim().to_string(),
            occurrence,
        });
    }
    Ok(ContentModel::Sequence(children))
}

fn parse_attlist_decl(body: &str) -> Result<(String, Vec<AttrDecl>)> {
    let (element, mut rest) = parse_name(body)?;
    let mut attrs = Vec::new();
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        let (attr_name, after_name) = parse_name(rest)?;
        let after_name = after_name.trim_start();
        let (ty, after_ty) = if let Some(r) = after_name.strip_prefix("IDREFS") {
            (AttrType::Idref, r)
        } else if let Some(r) = after_name.strip_prefix("IDREF") {
            (AttrType::Idref, r)
        } else if let Some(r) = after_name.strip_prefix("ID") {
            (AttrType::Id, r)
        } else if let Some(r) = after_name.strip_prefix("CDATA") {
            (AttrType::Cdata, r)
        } else {
            return Err(Error::Syntax {
                offset: 0,
                message: format!("unsupported attribute type near `{}`", truncate(after_name)),
            });
        };
        let after_ty = after_ty.trim_start();
        let (required, after_default) = if let Some(r) = after_ty.strip_prefix("#REQUIRED") {
            (true, r)
        } else if let Some(r) = after_ty.strip_prefix("#IMPLIED") {
            (false, r)
        } else {
            return Err(Error::Syntax {
                offset: 0,
                message: format!(
                    "unsupported attribute default near `{}`",
                    truncate(after_ty)
                ),
            });
        };
        attrs.push(AttrDecl {
            name: attr_name.to_string(),
            ty,
            required,
        });
        rest = after_default;
    }
    Ok((element.to_string(), attrs))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
        <!-- test dtd -->
        <!ELEMENT site (people, items?)>
        <!ELEMENT people (person*)>
        <!ELEMENT person (name, emailaddress, phone?, watches?)>
        <!ATTLIST person id ID #REQUIRED>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT emailaddress (#PCDATA)>
        <!ELEMENT phone (#PCDATA)>
        <!ELEMENT watches (watch*)>
        <!ELEMENT watch EMPTY>
        <!ATTLIST watch open_auction IDREF #REQUIRED>
        <!ELEMENT items (#PCDATA | bold | emph)*>
    "#;

    #[test]
    fn parses_element_declarations() {
        let dtd = Dtd::parse(MINI).unwrap();
        assert_eq!(dtd.len(), 9);
        assert_eq!(dtd.element("watch"), Some(&ContentModel::Empty));
        assert!(dtd.is_pcdata_only("name"));
        assert!(!dtd.is_pcdata_only("watches"));
        match dtd.element("person") {
            Some(ContentModel::Sequence(children)) => {
                assert_eq!(children.len(), 4);
                assert_eq!(children[2].name, "phone");
                assert_eq!(children[2].occurrence, Occurrence::Optional);
                assert_eq!(children[3].occurrence, Occurrence::Optional);
            }
            other => panic!("unexpected model {other:?}"),
        }
    }

    #[test]
    fn parses_mixed_content() {
        let dtd = Dtd::parse(MINI).unwrap();
        match dtd.element("items") {
            Some(ContentModel::Mixed(names)) => {
                assert_eq!(names, &["bold", "emph"]);
            }
            other => panic!("unexpected model {other:?}"),
        }
    }

    #[test]
    fn parses_attributes() {
        let dtd = Dtd::parse(MINI).unwrap();
        let person_attrs = dtd.attributes("person");
        assert_eq!(person_attrs.len(), 1);
        assert_eq!(person_attrs[0].name, "id");
        assert_eq!(person_attrs[0].ty, AttrType::Id);
        assert!(person_attrs[0].required);
        let watch_attrs = dtd.attributes("watch");
        assert_eq!(watch_attrs[0].ty, AttrType::Idref);
    }

    #[test]
    fn derives_inlined_schema() {
        let dtd = Dtd::parse(MINI).unwrap();
        let schema = dtd.derive_inlined_schema();
        // person inlines name, emailaddress, phone (at-most-once PCDATA
        // children); watches (element content) is excluded.
        let person = schema.iter().find(|(p, _)| p == "person").unwrap();
        assert_eq!(person.1, vec!["name", "emailaddress", "phone"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Dtd::parse("<!ELEMENT broken").is_err());
        assert!(Dtd::parse("<!ELEMENT x WEIRD>").is_err());
        assert!(Dtd::parse("<!ATTLIST x a UNKNOWNTYPE #REQUIRED>").is_err());
    }

    #[test]
    fn declaration_order_is_preserved() {
        let dtd = Dtd::parse(MINI).unwrap();
        let names: Vec<&str> = dtd.element_names().collect();
        assert_eq!(names[0], "site");
        assert_eq!(names[1], "people");
    }
}
