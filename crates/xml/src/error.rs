use std::fmt;

/// Errors produced while lexing or parsing XML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended in the middle of a construct.
    UnexpectedEof {
        /// What the lexer was in the middle of reading.
        context: &'static str,
    },
    /// A syntactic error at a byte offset.
    Syntax {
        /// Byte offset into the input where the problem was detected.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// An end tag did not match the innermost open start tag.
    MismatchedTag {
        /// Tag that was open.
        expected: String,
        /// Tag that was found.
        found: String,
        /// Byte offset of the offending end tag.
        offset: usize,
    },
    /// Document contained no root element, or content after the root.
    StructureViolation(String),
    /// A character or entity reference could not be resolved.
    BadReference {
        /// Byte offset of the reference.
        offset: usize,
        /// The raw reference text (without `&`/`;`).
        reference: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            Error::Syntax { offset, message } => {
                write!(f, "syntax error at byte {offset}: {message}")
            }
            Error::MismatchedTag {
                expected,
                found,
                offset,
            } => write!(
                f,
                "mismatched end tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            Error::StructureViolation(msg) => write!(f, "document structure violation: {msg}"),
            Error::BadReference { offset, reference } => {
                write!(f, "unresolvable reference `&{reference};` at byte {offset}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
