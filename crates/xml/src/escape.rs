//! Escaping and unescaping of XML character data and attribute values.
//!
//! XMark documents are plain 7-bit ASCII (§4.4 of the paper) and use only
//! the five predefined entities, so this module deliberately implements just
//! `&lt; &gt; &amp; &apos; &quot;` plus decimal/hex character references.

use std::fmt;

use crate::error::{Error, Result};

/// Escape `text` into an arbitrary [`fmt::Write`] sink, replacing the
/// characters that are unsafe in element content (`<`, `>`, `&`).
///
/// Safe runs are written as whole slices, so the per-character dispatch
/// cost of a `dyn` sink is only paid at the (rare) metacharacters.
pub fn escape_text_to(text: &str, out: &mut dyn fmt::Write) -> fmt::Result {
    escape_runs(text, out, |b| matches!(b, b'<' | b'>' | b'&'))
}

/// Escape `value` into an arbitrary [`fmt::Write`] sink, replacing the
/// characters that are unsafe inside a double-quoted attribute value.
pub fn escape_attr_to(value: &str, out: &mut dyn fmt::Write) -> fmt::Result {
    escape_runs(value, out, |b| matches!(b, b'<' | b'>' | b'&' | b'"'))
}

/// Write `text` as alternating safe slices and entity replacements. The
/// metacharacters are all ASCII, so scanning bytes never splits a UTF-8
/// sequence.
fn escape_runs(
    text: &str,
    out: &mut dyn fmt::Write,
    unsafe_byte: impl Fn(u8) -> bool,
) -> fmt::Result {
    let bytes = text.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if unsafe_byte(b) {
            if start < i {
                out.write_str(&text[start..i])?;
            }
            out.write_str(match b {
                b'<' => "&lt;",
                b'>' => "&gt;",
                b'&' => "&amp;",
                _ => "&quot;",
            })?;
            start = i + 1;
        }
    }
    if start < bytes.len() {
        out.write_str(&text[start..])?;
    }
    Ok(())
}

/// Append `text` to `out`, escaping the characters that are unsafe in
/// element content (`<`, `>`, `&`).
pub fn escape_text_into(text: &str, out: &mut String) {
    let _ = escape_text_to(text, out); // writing to a String cannot fail
}

/// Append `value` to `out`, escaping the characters that are unsafe inside
/// a double-quoted attribute value.
pub fn escape_attr_into(value: &str, out: &mut String) {
    let _ = escape_attr_to(value, out); // writing to a String cannot fail
}

/// Escape element content, returning a new string.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    escape_text_into(text, &mut out);
    out
}

/// Resolve a single reference body (the part between `&` and `;`).
///
/// `offset` is only used for error reporting.
pub fn resolve_reference(body: &str, offset: usize) -> Result<char> {
    match body {
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "amp" => Ok('&'),
        "apos" => Ok('\''),
        "quot" => Ok('"'),
        _ => {
            let code =
                if let Some(hex) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
            code.and_then(char::from_u32).ok_or(Error::BadReference {
                offset,
                reference: body.to_string(),
            })
        }
    }
}

/// Unescape a slice of raw character data into `out`.
///
/// Returns an error for malformed or unknown references; the XMark
/// generator never emits such data, but hand-written inputs might.
pub fn unescape_into(raw: &str, base_offset: usize, out: &mut String) -> Result<()> {
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            let rest = &raw[i + 1..];
            let end = rest.find(';').ok_or(Error::UnexpectedEof {
                context: "entity reference",
            })?;
            let body = &rest[..end];
            out.push(resolve_reference(body, base_offset + i)?);
            i += end + 2;
        } else {
            // Advance over one UTF-8 character (ASCII fast path: one byte).
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&raw[i..i + ch_len]);
            i += ch_len;
        }
    }
    Ok(())
}

#[inline]
fn utf8_len(first: u8) -> usize {
    match first {
        0..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Unescape raw character data, returning a new string.
pub fn unescape(raw: &str) -> Result<String> {
    let mut out = String::with_capacity(raw.len());
    unescape_into(raw, 0, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_the_three_text_metacharacters() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn escapes_quotes_in_attributes() {
        let mut s = String::new();
        escape_attr_into("say \"hi\"", &mut s);
        assert_eq!(s, "say &quot;hi&quot;");
    }

    #[test]
    fn unescapes_predefined_entities() {
        assert_eq!(unescape("&lt;&gt;&amp;&apos;&quot;").unwrap(), "<>&'\"");
    }

    #[test]
    fn unescapes_numeric_references() {
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
    }

    #[test]
    fn roundtrips_arbitrary_ascii() {
        let original = "price > 40 & cost < 100";
        assert_eq!(unescape(&escape_text(original)).unwrap(), original);
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(matches!(
            unescape("&nbsp;"),
            Err(Error::BadReference { .. })
        ));
    }

    #[test]
    fn rejects_unterminated_reference() {
        assert!(matches!(unescape("&amp"), Err(Error::UnexpectedEof { .. })));
    }

    #[test]
    fn passes_multibyte_utf8_through() {
        assert_eq!(unescape("caf\u{e9}").unwrap(), "caf\u{e9}");
    }
}
