//! A pull-based, zero-copy XML tokenizer.
//!
//! The tokenizer plays the role that expat plays in the paper's experiments
//! (§7 quotes 4.9 s to scan the 100 MB benchmark document): it performs
//! tokenization and the normalizations required by the XML standard but no
//! semantic actions. Character data and attribute values are returned as
//! *raw* slices of the input; callers decide when to pay for unescaping via
//! [`crate::escape::unescape`].
//!
//! Supported constructs are exactly those the XMark generator emits plus the
//! usual prolog miscellanea: the XML declaration, `<!DOCTYPE …>` (including
//! an internal DTD subset, which is skipped), comments, processing
//! instructions, CDATA sections, start/empty/end tags and character data.

use crate::error::{Error, Result};

/// A single token pulled from the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token<'a> {
    /// `<name attr="v" …>` or `<name …/>`; attribute values are raw
    /// (not yet unescaped) slices.
    StartTag {
        /// Element name.
        name: &'a str,
        /// Attribute name/value pairs in document order.
        attrs: Vec<(&'a str, &'a str)>,
        /// Whether the tag was self-closing (`<a/>`).
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: &'a str,
    },
    /// Raw character data between tags (entities unresolved). CDATA
    /// sections are delivered as already-literal text.
    Text {
        /// The raw slice.
        raw: &'a str,
        /// Whether the slice came from a CDATA section (then it needs no
        /// unescaping).
        cdata: bool,
    },
    /// `<!-- … -->` contents.
    Comment(&'a str),
    /// `<?target data?>` (including the XML declaration).
    ProcessingInstruction(&'a str),
    /// `<!DOCTYPE …>`; the raw contents are provided for DTD-aware callers.
    DocType(&'a str),
}

/// Pull tokenizer over a UTF-8 input string.
pub struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    /// Current byte offset (useful for error reporting and progress).
    pub fn offset(&self) -> usize {
        self.pos
    }

    #[inline]
    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        let bytes = self.bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, expected: u8, context: &'static str) -> Result<()> {
        match self.peek() {
            Some(b) if b == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(Error::Syntax {
                offset: self.pos,
                message: format!(
                    "expected `{}`, found `{}` in {context}",
                    expected as char, b as char
                ),
            }),
            None => Err(Error::UnexpectedEof { context }),
        }
    }

    /// Scan an XML Name starting at the current position.
    fn scan_name(&mut self, context: &'static str) -> Result<&'a str> {
        let start = self.pos;
        let bytes = self.bytes();
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error::Syntax {
                offset: start,
                message: format!("expected a name in {context}"),
            });
        }
        Ok(&self.input[start..self.pos])
    }

    /// Pull the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Token<'a>>> {
        if self.pos >= self.input.len() {
            return Ok(None);
        }
        if self.peek() == Some(b'<') {
            self.lex_markup().map(Some)
        } else {
            self.lex_text().map(Some)
        }
    }

    fn lex_text(&mut self) -> Result<Token<'a>> {
        let start = self.pos;
        let bytes = self.bytes();
        while self.pos < bytes.len() && bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        Ok(Token::Text {
            raw: &self.input[start..self.pos],
            cdata: false,
        })
    }

    fn lex_markup(&mut self) -> Result<Token<'a>> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        match self.peek() {
            Some(b'/') => {
                self.pos += 1;
                let name = self.scan_name("end tag")?;
                self.skip_whitespace();
                self.expect_byte(b'>', "end tag")?;
                Ok(Token::EndTag { name })
            }
            Some(b'?') => {
                self.pos += 1;
                let body = self.take_until("?>", "processing instruction")?;
                Ok(Token::ProcessingInstruction(body))
            }
            Some(b'!') => {
                self.pos += 1;
                if self.input[self.pos..].starts_with("--") {
                    self.pos += 2;
                    let body = self.take_until("-->", "comment")?;
                    Ok(Token::Comment(body))
                } else if self.input[self.pos..].starts_with("[CDATA[") {
                    self.pos += 7;
                    let body = self.take_until("]]>", "CDATA section")?;
                    Ok(Token::Text {
                        raw: body,
                        cdata: true,
                    })
                } else if self.input[self.pos..].starts_with("DOCTYPE") {
                    self.pos += 7;
                    let body = self.take_doctype()?;
                    Ok(Token::DocType(body))
                } else {
                    Err(Error::Syntax {
                        offset: self.pos,
                        message: "unrecognized `<!` construct".to_string(),
                    })
                }
            }
            Some(_) => self.lex_start_tag(),
            None => Err(Error::UnexpectedEof { context: "markup" }),
        }
    }

    fn take_until(&mut self, terminator: &str, context: &'static str) -> Result<&'a str> {
        match self.input[self.pos..].find(terminator) {
            Some(rel) => {
                let body = &self.input[self.pos..self.pos + rel];
                self.pos += rel + terminator.len();
                Ok(body)
            }
            None => Err(Error::UnexpectedEof { context }),
        }
    }

    /// Consume a DOCTYPE declaration, honoring a bracketed internal subset.
    fn take_doctype(&mut self) -> Result<&'a str> {
        let start = self.pos;
        let bytes = self.bytes();
        let mut depth = 0usize;
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    let body = &self.input[start..self.pos];
                    self.pos += 1;
                    return Ok(body.trim());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(Error::UnexpectedEof {
            context: "DOCTYPE declaration",
        })
    }

    fn lex_start_tag(&mut self) -> Result<Token<'a>> {
        let name = self.scan_name("start tag")?;
        let mut attrs = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(Token::StartTag {
                        name,
                        attrs,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect_byte(b'>', "empty-element tag")?;
                    return Ok(Token::StartTag {
                        name,
                        attrs,
                        self_closing: true,
                    });
                }
                Some(_) => {
                    let attr_name = self.scan_name("attribute")?;
                    self.skip_whitespace();
                    self.expect_byte(b'=', "attribute")?;
                    self.skip_whitespace();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => {
                            self.pos += 1;
                            q
                        }
                        _ => {
                            return Err(Error::Syntax {
                                offset: self.pos,
                                message: "attribute value must be quoted".to_string(),
                            })
                        }
                    };
                    let vstart = self.pos;
                    let bytes = self.bytes();
                    while self.pos < bytes.len() && bytes[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= bytes.len() {
                        return Err(Error::UnexpectedEof {
                            context: "attribute value",
                        });
                    }
                    let value = &self.input[vstart..self.pos];
                    self.pos += 1; // closing quote
                    attrs.push((attr_name, value));
                }
                None => {
                    return Err(Error::UnexpectedEof {
                        context: "start tag",
                    })
                }
            }
        }
    }
}

impl<'a> Iterator for Lexer<'a> {
    type Item = Result<Token<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_token().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tokens(input: &str) -> Vec<Token<'_>> {
        Lexer::new(input).collect::<Result<Vec<_>>>().unwrap()
    }

    #[test]
    fn lexes_simple_element() {
        let toks = all_tokens("<a>hi</a>");
        assert_eq!(toks.len(), 3);
        assert!(matches!(
            toks[0],
            Token::StartTag {
                name: "a",
                self_closing: false,
                ..
            }
        ));
        assert!(matches!(toks[1], Token::Text { raw: "hi", .. }));
        assert!(matches!(toks[2], Token::EndTag { name: "a" }));
    }

    #[test]
    fn lexes_attributes_in_order() {
        let toks = all_tokens(r#"<person id="person0" featured="yes"/>"#);
        match &toks[0] {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                assert_eq!(*name, "person");
                assert!(*self_closing);
                assert_eq!(attrs, &[("id", "person0"), ("featured", "yes")]);
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn lexes_single_quoted_attributes() {
        let toks = all_tokens("<a x='1'/>");
        match &toks[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs, &[("x", "1")]),
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn lexes_prolog_comment_and_doctype() {
        let toks = all_tokens(
            "<?xml version=\"1.0\"?><!-- c --><!DOCTYPE site SYSTEM \"auction.dtd\"><site/>",
        );
        assert!(matches!(toks[0], Token::ProcessingInstruction(_)));
        assert!(matches!(toks[1], Token::Comment(" c ")));
        assert!(matches!(toks[2], Token::DocType(_)));
        assert!(matches!(toks[3], Token::StartTag { name: "site", .. }));
    }

    #[test]
    fn lexes_doctype_with_internal_subset() {
        let toks = all_tokens("<!DOCTYPE site [ <!ELEMENT site (x)> ]><site/>");
        match &toks[0] {
            Token::DocType(body) => assert!(body.contains("<!ELEMENT site (x)>")),
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn lexes_cdata_as_literal_text() {
        let toks = all_tokens("<a><![CDATA[1 < 2 & 3]]></a>");
        assert!(matches!(
            toks[1],
            Token::Text {
                raw: "1 < 2 & 3",
                cdata: true
            }
        ));
    }

    #[test]
    fn reports_eof_in_tag() {
        let err = Lexer::new("<open").collect::<Result<Vec<_>>>().unwrap_err();
        assert!(matches!(err, Error::UnexpectedEof { .. }));
    }

    #[test]
    fn reports_unquoted_attribute() {
        let err = Lexer::new("<a x=1/>")
            .collect::<Result<Vec<_>>>()
            .unwrap_err();
        assert!(matches!(err, Error::Syntax { .. }));
    }

    #[test]
    fn whitespace_inside_tags_is_tolerated() {
        let toks = all_tokens("<a  x = \"1\"  ></a >");
        assert!(matches!(toks[0], Token::StartTag { .. }));
        assert!(matches!(toks[1], Token::EndTag { name: "a" }));
    }
}
