//! XML infrastructure for the XMark benchmark suite.
//!
//! This crate provides everything the benchmark needs to get an XML document
//! from bytes into a queryable in-memory form and back:
//!
//! * [`lexer`] — a zero-copy, pull-based tokenizer in the spirit of expat
//!   (the parser the paper uses for its 4.9 s/100 MB scan baseline),
//! * [`dom`] — an arena-allocated document object model whose node ids
//!   *are* document order, which the query layer exploits for the
//!   `BEFORE`/`<<` operator of XMark query Q4,
//! * [`parser`] — glue that builds a [`dom::Document`] from the token
//!   stream,
//! * [`serialize`](mod@serialize) — configurable serialization including a canonical form
//!   used by the cross-backend output-equivalence tests (§1 of the paper
//!   discusses why deciding result equivalence is hard; canonicalization is
//!   our answer),
//! * [`escape`] — the five predefined entities plus numeric character
//!   references, the only escaping XMark documents require (§4.4 restricts
//!   the generator to 7-bit ASCII and forbids user-defined entities).
//!
//! # Quick example
//!
//! ```
//! use xmark_xml::parse_document;
//!
//! let doc = parse_document("<site><people><person id=\"person0\"/></people></site>").unwrap();
//! let root = doc.root_element();
//! assert_eq!(doc.tag_name(root), "site");
//! ```

pub mod dom;
pub mod dtd;
pub mod escape;
pub mod lexer;
pub mod parser;
pub mod serialize;

mod error;

pub use dom::{Document, NodeId, NodeKind};
pub use dtd::Dtd;
pub use error::{Error, Result};
pub use lexer::{Lexer, Token};
pub use parser::parse_document;
pub use serialize::{serialize, serialize_canonical, SerializeOptions};
