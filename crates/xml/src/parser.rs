//! Builds a [`Document`] from the token stream of [`crate::lexer::Lexer`].
//!
//! Because the builder allocates nodes as the lexer delivers start tags and
//! text, node ids come out in depth-first pre-order — the document-order
//! property the DOM layer documents and the query layer relies on.

use crate::dom::{Document, NodeId};
use crate::error::{Error, Result};
use crate::escape;
use crate::lexer::{Lexer, Token};

/// Parse a complete XML document.
///
/// Whitespace-only text between elements is dropped (the XMark generator
/// emits pretty-printed documents; the paper's queries are insensitive to
/// ignorable whitespace). Text inside mixed content is preserved verbatim.
pub fn parse_document(input: &str) -> Result<Document> {
    let mut doc = Document::new();
    let mut lexer = Lexer::new(input);
    let mut stack: Vec<NodeId> = Vec::with_capacity(32);
    let mut text_buf = String::new();

    while let Some(token) = lexer.next_token()? {
        match token {
            Token::ProcessingInstruction(_) | Token::Comment(_) | Token::DocType(_) => {}
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                let element = doc.create_element(name);
                for (attr_name, raw_value) in attrs {
                    text_buf.clear();
                    escape::unescape_into(raw_value, lexer.offset(), &mut text_buf)?;
                    doc.set_attribute(element, attr_name, text_buf.clone());
                }
                match stack.last() {
                    Some(&parent) => doc.append_child(parent, element),
                    None => {
                        if doc.try_root().is_some() {
                            return Err(Error::StructureViolation(
                                "multiple root elements".to_string(),
                            ));
                        }
                        doc.set_root(element);
                    }
                }
                if !self_closing {
                    stack.push(element);
                }
            }
            Token::EndTag { name } => {
                let top = stack.pop().ok_or_else(|| {
                    Error::StructureViolation(format!("end tag </{name}> with no open element"))
                })?;
                let open_name = doc.tag_name(top);
                if open_name != name {
                    return Err(Error::MismatchedTag {
                        expected: open_name.to_string(),
                        found: name.to_string(),
                        offset: lexer.offset(),
                    });
                }
            }
            Token::Text { raw, cdata } => {
                let Some(&parent) = stack.last() else {
                    if raw.trim().is_empty() {
                        continue;
                    }
                    return Err(Error::StructureViolation(
                        "character data outside the root element".to_string(),
                    ));
                };
                if raw.trim().is_empty() {
                    continue;
                }
                let text = if cdata {
                    raw.to_string()
                } else {
                    text_buf.clear();
                    escape::unescape_into(raw, lexer.offset(), &mut text_buf)?;
                    text_buf.clone()
                };
                let node = doc.create_text(text);
                doc.append_child(parent, node);
            }
        }
    }

    if let Some(&open) = stack.last() {
        return Err(Error::StructureViolation(format!(
            "unclosed element <{}>",
            doc.tag_name(open)
        )));
    }
    if doc.try_root().is_none() {
        return Err(Error::StructureViolation("no root element".to_string()));
    }
    Ok(doc)
}

/// Scan the input without building a DOM, returning the number of tokens.
///
/// This is the analogue of the paper's expat measurement (§7): tokenization
/// plus required normalization, no semantic actions.
pub fn scan_only(input: &str) -> Result<usize> {
    let mut lexer = Lexer::new(input);
    let mut count = 0usize;
    while lexer.next_token()?.is_some() {
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse_document(
            r#"<site><regions><africa><item id="item0"><name>sword</name></item></africa></regions></site>"#,
        )
        .unwrap();
        let root = doc.root_element();
        assert_eq!(doc.tag_name(root), "site");
        let item: Vec<_> = doc
            .descendants(root)
            .filter(|&n| doc.is_element(n) && doc.tag_name(n) == "item")
            .collect();
        assert_eq!(item.len(), 1);
        assert_eq!(doc.attribute(item[0], "id"), Some("item0"));
        assert_eq!(doc.string_value(item[0]), "sword");
    }

    #[test]
    fn drops_ignorable_whitespace() {
        let doc = parse_document("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        let root = doc.root_element();
        assert_eq!(doc.children(root).count(), 2);
    }

    #[test]
    fn preserves_mixed_content_text() {
        let doc = parse_document("<text>one <bold>two</bold> three</text>").unwrap();
        let root = doc.root_element();
        assert_eq!(doc.string_value(root), "one two three");
        assert_eq!(doc.children(root).count(), 3);
    }

    #[test]
    fn unescapes_text_and_attributes() {
        let doc = parse_document(r#"<a note="x &lt; y">1 &amp; 2</a>"#).unwrap();
        let root = doc.root_element();
        assert_eq!(doc.attribute(root, "note"), Some("x < y"));
        assert_eq!(doc.string_value(root), "1 & 2");
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(matches!(
            parse_document("<a><b></a></b>"),
            Err(Error::MismatchedTag { .. })
        ));
    }

    #[test]
    fn rejects_unclosed_root() {
        assert!(matches!(
            parse_document("<a><b></b>"),
            Err(Error::StructureViolation(_))
        ));
    }

    #[test]
    fn rejects_second_root() {
        assert!(matches!(
            parse_document("<a/><b/>"),
            Err(Error::StructureViolation(_))
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_document("   ").is_err());
    }

    #[test]
    fn accepts_prolog() {
        let doc = parse_document("<?xml version=\"1.0\"?><!DOCTYPE site><site/>").unwrap();
        assert_eq!(doc.tag_name(doc.root_element()), "site");
    }

    #[test]
    fn node_ids_follow_document_order() {
        let doc = parse_document("<a><b><c/></b><d/></a>").unwrap();
        let root = doc.root_element();
        let order: Vec<&str> = doc.descendants(root).map(|n| doc.tag_name(n)).collect();
        assert_eq!(order, vec!["b", "c", "d"]);
        let ids: Vec<_> = doc.descendants(root).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn scan_only_counts_tokens() {
        let n = scan_only("<a><b>t</b></a>").unwrap();
        assert_eq!(n, 5);
    }
}
