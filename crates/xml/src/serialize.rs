//! Serialization of DOM (sub)trees back to XML text.
//!
//! Two modes matter to the benchmark:
//!
//! * **plain** — used by Q13 ("reconstruction") and by result construction:
//!   attributes keep document order, no indentation (the paper's Q10 output
//!   size of "more than 10 MB of (unindented) XML text" assumes this),
//! * **canonical** — attributes sorted by name, text normalized; used by the
//!   cross-backend output-equivalence tests, our answer to the paper's §1
//!   observation that deciding query-output equivalence is an open problem.

use crate::dom::{Document, NodeId, NodeKind};
use crate::escape;

/// Options controlling serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SerializeOptions {
    /// Sort attributes lexicographically by name (canonical form).
    pub sort_attributes: bool,
    /// Indent output with two spaces per level and newlines between
    /// element children. Mixed content is never re-indented.
    pub indent: bool,
}

/// Serialize the subtree rooted at `node` with `options`.
pub fn serialize_with(doc: &Document, node: NodeId, options: SerializeOptions) -> String {
    let mut out = String::new();
    write_node(doc, node, options, 0, &mut out);
    out
}

/// Serialize the subtree rooted at `node` in plain (document-order) form.
pub fn serialize_node(doc: &Document, node: NodeId) -> String {
    serialize_with(doc, node, SerializeOptions::default())
}

/// Serialize the whole document in plain form.
pub fn serialize(doc: &Document) -> String {
    serialize_node(doc, doc.root_element())
}

/// Serialize the subtree rooted at `node` canonically (sorted attributes).
pub fn serialize_canonical(doc: &Document, node: NodeId) -> String {
    serialize_with(
        doc,
        node,
        SerializeOptions {
            sort_attributes: true,
            indent: false,
        },
    )
}

fn write_node(
    doc: &Document,
    node: NodeId,
    options: SerializeOptions,
    level: usize,
    out: &mut String,
) {
    match doc.kind(node) {
        NodeKind::Text { text } => escape::escape_text_into(text, out),
        NodeKind::Element { .. } => {
            let tag = doc.tag_name(node);
            out.push('<');
            out.push_str(tag);
            let attrs = doc.attributes(node);
            if options.sort_attributes {
                let mut sorted: Vec<_> = attrs.iter().collect();
                sorted.sort_by_key(|(sym, _)| doc.interner().resolve(*sym));
                for (sym, value) in sorted {
                    write_attr(doc.interner().resolve(*sym), value, out);
                }
            } else {
                for (sym, value) in attrs {
                    write_attr(doc.interner().resolve(*sym), value, out);
                }
            }
            let mut children = doc.children(node).peekable();
            if children.peek().is_none() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            // Only indent when all children are elements — re-indenting
            // mixed content would alter string values.
            let all_elements = doc.children(node).all(|c| doc.is_element(c));
            for child in children {
                if options.indent && all_elements {
                    out.push('\n');
                    for _ in 0..(level + 1) {
                        out.push_str("  ");
                    }
                }
                write_node(doc, child, options, level + 1, out);
            }
            if options.indent && all_elements {
                out.push('\n');
                for _ in 0..level {
                    out.push_str("  ");
                }
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

fn write_attr(name: &str, value: &str, out: &mut String) {
    out.push(' ');
    out.push_str(name);
    out.push_str("=\"");
    escape::escape_attr_into(value, out);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn roundtrips_simple_document() {
        let src = r#"<site><person id="person0"><name>Alice</name></person></site>"#;
        let doc = parse_document(src).unwrap();
        assert_eq!(serialize(&doc), src);
    }

    #[test]
    fn empty_elements_self_close() {
        let doc = parse_document("<a><b></b></a>").unwrap();
        assert_eq!(serialize(&doc), "<a><b/></a>");
    }

    #[test]
    fn escapes_on_output() {
        let mut doc = Document::new();
        let root = doc.create_element("a");
        doc.set_attribute(root, "q", "x\"y<z");
        let t = doc.create_text("1 < 2 & 3");
        doc.append_child(root, t);
        doc.set_root(root);
        assert_eq!(
            serialize(&doc),
            "<a q=\"x&quot;y&lt;z\">1 &lt; 2 &amp; 3</a>"
        );
    }

    #[test]
    fn canonical_sorts_attributes() {
        let doc = parse_document(r#"<a zeta="1" alpha="2"/>"#).unwrap();
        assert_eq!(
            serialize_canonical(&doc, doc.root_element()),
            r#"<a alpha="2" zeta="1"/>"#
        );
        // Plain form preserves document order.
        assert_eq!(serialize(&doc), r#"<a zeta="1" alpha="2"/>"#);
    }

    #[test]
    fn indent_mode_preserves_mixed_content() {
        let doc = parse_document("<t>one <b>two</b> three</t>").unwrap();
        let pretty = serialize_with(
            &doc,
            doc.root_element(),
            SerializeOptions {
                sort_attributes: false,
                indent: true,
            },
        );
        assert_eq!(pretty, "<t>one <b>two</b> three</t>");
    }

    #[test]
    fn indent_mode_indents_element_only_content() {
        let doc = parse_document("<a><b/><c/></a>").unwrap();
        let pretty = serialize_with(
            &doc,
            doc.root_element(),
            SerializeOptions {
                sort_attributes: false,
                indent: true,
            },
        );
        assert_eq!(pretty, "<a>\n  <b/>\n  <c/>\n</a>");
    }

    #[test]
    fn parse_serialize_parse_is_stable() {
        let src = r#"<x a="1"><y>t&amp;t</y><z/></x>"#;
        let doc1 = parse_document(src).unwrap();
        let out1 = serialize(&doc1);
        let doc2 = parse_document(&out1).unwrap();
        assert_eq!(out1, serialize(&doc2));
    }
}
