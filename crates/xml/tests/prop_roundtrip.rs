//! Property tests for the XML layer: parse/serialize round-trips over
//! arbitrary generated trees, and escape/unescape inverses over arbitrary
//! strings.

use proptest::prelude::*;

use xmark_xml::{dom::Document, parse_document, serialize};

// ---- escaping -------------------------------------------------------------

proptest! {
    #[test]
    fn escape_then_unescape_is_identity(s in "\\PC{0,200}") {
        let escaped = xmark_xml::escape::escape_text(&s);
        let back = xmark_xml::escape::unescape(&escaped).unwrap();
        prop_assert_eq!(back, s);
    }

    #[test]
    fn escaped_text_never_contains_raw_metacharacters(s in "\\PC{0,200}") {
        let escaped = xmark_xml::escape::escape_text(&s);
        prop_assert!(!escaped.contains('<'));
        // `&` may only appear as the start of an entity.
        for (i, c) in escaped.char_indices() {
            if c == '&' {
                prop_assert!(escaped[i..].find(';').is_some());
            }
        }
    }
}

// ---- random document trees -------------------------------------------------

/// A recursive tree model that we can lower into a DOM.
#[derive(Debug, Clone)]
enum TreeNode {
    Element {
        tag: usize,
        attrs: Vec<(usize, String)>,
        children: Vec<TreeNode>,
    },
    Text(String),
}

const TAGS: [&str; 8] = [
    "site",
    "item",
    "person",
    "name",
    "description",
    "text",
    "keyword",
    "bold",
];
const ATTR_NAMES: [&str; 4] = ["id", "category", "person", "featured"];

fn arb_text() -> impl Strategy<Value = String> {
    // Printable, non-empty after trim so the parser keeps it.
    "[ -~]{1,30}".prop_filter("non-blank", |s| !s.trim().is_empty())
}

fn arb_tree(depth: u32) -> impl Strategy<Value = TreeNode> {
    let leaf = prop_oneof![
        arb_text().prop_map(TreeNode::Text),
        (
            0..TAGS.len(),
            prop::collection::vec((0..ATTR_NAMES.len(), "[ -~]{0,10}"), 0..3)
        )
            .prop_map(|(tag, attrs)| TreeNode::Element {
                tag,
                attrs,
                children: Vec::new()
            }),
    ];
    leaf.prop_recursive(depth, 64, 5, |inner| {
        (
            0..TAGS.len(),
            prop::collection::vec((0..ATTR_NAMES.len(), "[ -~]{0,10}"), 0..3),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(tag, attrs, children)| TreeNode::Element {
                tag,
                attrs,
                children,
            })
    })
}

fn lower(doc: &mut Document, node: &TreeNode) -> xmark_xml::NodeId {
    match node {
        TreeNode::Text(t) => doc.create_text(t.clone()),
        TreeNode::Element {
            tag,
            attrs,
            children,
        } => {
            let e = doc.create_element(TAGS[*tag]);
            let mut seen = std::collections::HashSet::new();
            for (name, value) in attrs {
                // XML forbids duplicate attribute names.
                if seen.insert(*name) {
                    doc.set_attribute(e, ATTR_NAMES[*name], value.clone());
                }
            }
            for child in children {
                let c = lower(doc, child);
                doc.append_child(e, c);
            }
            e
        }
    }
}

fn build_document(root: &TreeNode) -> Document {
    let mut doc = Document::new();
    // Force an element at the root.
    let root_node = match root {
        TreeNode::Text(t) => {
            let e = doc.create_element("site");
            let c = doc.create_text(t.clone());
            doc.append_child(e, c);
            e
        }
        elem => lower(&mut doc, elem),
    };
    doc.set_root(root_node);
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_parse_serialize_is_stable(tree in arb_tree(4)) {
        let doc = build_document(&tree);
        let first = serialize(&doc);
        let reparsed = parse_document(&first).unwrap();
        let second = serialize(&reparsed);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn parse_preserves_string_values(tree in arb_tree(4)) {
        let doc = build_document(&tree);
        let serialized = serialize(&doc);
        let reparsed = parse_document(&serialized).unwrap();
        // String values survive the round trip, modulo the whitespace-only
        // text nodes the parser legitimately drops; comparing serialized
        // forms (above) is the strict check, this one targets text content.
        let original = doc.string_value(doc.root_element());
        let roundtrip = reparsed.string_value(reparsed.root_element());
        if original.trim().is_empty() {
            prop_assert!(roundtrip.trim().is_empty());
        } else {
            prop_assert_eq!(original, roundtrip);
        }
    }

    #[test]
    fn node_ids_stay_preorder(tree in arb_tree(4)) {
        let doc = build_document(&tree);
        let reparsed = parse_document(&serialize(&doc)).unwrap();
        let ids: Vec<_> = reparsed.descendants(reparsed.root_element()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        prop_assert_eq!(ids, sorted);
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_input(s in "\\PC{0,300}") {
        // Errors are fine; panics are not.
        let _ = parse_document(&s);
    }
}
