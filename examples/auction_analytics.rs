//! Auction analytics: the e-commerce decision-support scenario that
//! motivates the benchmark's reference-chasing and value-join queries
//! (paper §1: "electronic commerce sites … increasingly interested in
//! deploying advanced data management systems").
//!
//! Runs a small analytics suite over the auction database: top buyers
//! (Q8's join), purchasing power (Q11/Q12's theta-join), the income
//! segmentation report (Q20), and a custom "hot auctions" query showing
//! that the engine is not limited to the canned twenty.
//!
//! ```text
//! cargo run --release --example auction_analytics [factor]
//! ```

use xmark::prelude::*;

fn main() {
    let factor: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.003);

    println!("== auction-site analytics (factor {factor}) ==");
    // The inlined relational store is the architecture the paper found
    // strongest on entity-shaped analytics.
    let session = Benchmark::at_factor(factor)
        .systems(&[SystemId::C])
        .generate();
    let loaded = session.load(SystemId::C);
    let store = loaded.store.as_ref();
    println!(
        "loaded {} nodes into {} in {:?}\n",
        store.node_count(),
        SystemId::C,
        loaded.load_time
    );

    // -- Q8: who bought how much? ---------------------------------------
    println!("top buyers (Q8, reference chasing):");
    let q8 = run_query(query(8).text, store).expect("Q8 runs");
    let mut buyers: Vec<(String, usize)> = q8
        .iter()
        .filter_map(|item| match item {
            xmark::query::Item::Elem(e) => {
                let name = e.attrs.iter().find(|(k, _)| k == "person")?.1.clone();
                let count: usize = match e.children.first() {
                    Some(xmark::query::Item::Num(n)) => *n as usize,
                    Some(xmark::query::Item::Str(s)) => s.parse().ok()?,
                    _ => 0,
                };
                Some((name, count))
            }
            _ => None,
        })
        .collect();
    buyers.sort_by_key(|(_, bought)| std::cmp::Reverse(*bought));
    for (name, bought) in buyers.iter().take(5) {
        println!("  {bought:>3} items  {name}");
    }
    let total: usize = buyers.iter().map(|(_, n)| n).sum();
    println!("  ({} purchases across {} persons)\n", total, buyers.len());

    // -- Q20: income segmentation -----------------------------------------
    println!("customer segmentation (Q20, semi-structured aggregation):");
    let q20 = run_query(query(20).text, store).expect("Q20 runs");
    println!("  {}\n", serialize_sequence(store, &q20));

    // -- Q12: affordable items for the affluent ---------------------------
    println!("purchasing power of high-income customers (Q12, theta-join):");
    let q12 = run_query(query(12).text, store).expect("Q12 runs");
    let affluent = q12.len();
    println!("  {affluent} persons with income > 50000 analysed");

    // -- a custom query beyond the canned twenty --------------------------
    println!("\nhot auctions (custom query — not part of the twenty):");
    let hot = run_query(
        r#"
        for $a in document("auction.xml")/site/open_auctions/open_auction
        where count($a/bidder) >= 4
        order by zero-or-one($a/current) descending
        return <hot id="{$a/@id}" bids="{count($a/bidder)}" current="{$a/current/text()}"/>
        "#,
        store,
    )
    .expect("custom query runs");
    for item in hot.iter().take(5) {
        let mut line = String::new();
        xmark::query::result::serialize_item(store, item, &mut line);
        println!("  {line}");
    }
    println!("  ({} auctions with at least 4 bids)", hot.len());
}
