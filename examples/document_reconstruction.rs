//! Document reconstruction (paper §6.8): "A key design for XML-to-DBMS
//! mappings is to determine the fragmentation criteria. The complementary
//! action is to reconstruct the original document from its broken-down
//! representation."
//!
//! Loads the same document into the monolithic edge store (A) and the
//! highly fragmenting store (B), runs Q13, verifies both reconstruct
//! byte-identical XML, and compares the cost — fragmentation makes
//! reconstruction expensive, which is exactly the paper's point.
//!
//! Also demonstrates §5's split-mode bulkloading.
//!
//! ```text
//! cargo run --release --example document_reconstruction [factor]
//! ```

use xmark::prelude::*;

fn main() {
    let factor: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.005);

    println!("== document reconstruction (factor {factor}) ==");
    let session = Benchmark::at_factor(factor)
        .systems(&[SystemId::A, SystemId::B])
        .generate();

    let mut outputs = Vec::new();
    for loaded in session.load_all() {
        let system = loaded.system;
        let store = loaded.store.as_ref();
        let start = std::time::Instant::now();
        let result = run_query(query(13).text, store).expect("Q13 runs");
        let rendered = serialize_sequence(store, &result);
        let elapsed = start.elapsed();
        println!(
            "{system} ({}):\n  reconstructed {} Australian items, {} bytes, in {:?}",
            system.architecture(),
            result.len(),
            rendered.len(),
            elapsed
        );
        outputs.push(rendered);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "both architectures must reconstruct identical XML"
    );
    println!("\nreconstruction outputs are byte-identical across architectures ✓");

    if let Some(first) = outputs[0].lines().next() {
        let preview: String = first.chars().take(120).collect();
        println!("  first item: {preview}…");
    }

    // §5: split-mode generation for systems that cannot swallow one large
    // document. Each file is well-formed and entities are byte-identical
    // to the monolithic version.
    println!("\nsplit-mode bulkload (n entities per file, paper §5):");
    let files = generate_split(&GeneratorConfig::at_factor(factor), 50);
    let total: usize = files.iter().map(|f| f.content.len()).sum();
    println!(
        "  {} files, {} bytes total (monolithic: {} bytes)",
        files.len(),
        total,
        session.xml().len()
    );
    for f in files.iter().take(4) {
        println!("    {} ({} bytes)", f.name, f.content.len());
    }

    // Round-trip check: parse one split file and reconstruct it.
    let sample = &files[0];
    let parsed = xmark::xml::parse_document(&sample.content).expect("split file parses");
    let round = xmark::xml::serialize(&parsed);
    println!(
        "\n  round-trip of {}: {} bytes re-serialized ✓",
        sample.name,
        round.len()
    );
}
