//! Full-text search over document-centric content — the paper's §6.9:
//! "full-text scanning could be studied in isolation [but] the interaction
//! with structural mark-up is essential as the concepts are considered
//! orthogonal."
//!
//! Runs Q14 (items whose description mentions "gold") on two storage
//! architectures and then explores how keyword selectivity behaves for
//! other vocabulary anchor words.
//!
//! ```text
//! cargo run --release --example fulltext_search [factor]
//! ```

use xmark::prelude::*;

fn main() {
    let factor: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.01);

    println!("== structured full-text search (factor {factor}) ==");
    let session = Benchmark::at_factor(factor)
        .systems(&[SystemId::E, SystemId::G])
        .generate();

    // Q14 combines content and structure; compare an indexed native store
    // with the naive embedded walker.
    for loaded in session.load_all() {
        let system = loaded.system;
        let store = loaded.store.as_ref();
        let start = std::time::Instant::now();
        let hits = run_query(query(14).text, store).expect("Q14 runs");
        println!(
            "{system} ({}): {} items mention 'gold' in {:?}",
            system.architecture(),
            hits.len(),
            start.elapsed()
        );
        for item in hits.iter().take(3) {
            println!(
                "    e.g. {}",
                serialize_sequence(store, std::slice::from_ref(item))
            );
        }
    }

    // Keyword selectivity sweep: the vocabulary pins anchor words at known
    // Zipf ranks, so selectivity falls monotonically with rank.
    println!("\nkeyword selectivity sweep (descendant search + contains):");
    let loaded = session.load(SystemId::E);
    let store = loaded.store.as_ref();
    let total_items = run_query(r#"count(document("x")/site//item)"#, store)
        .ok()
        .and_then(|s| s.first().cloned())
        .map(|i| xmark::query::atomize(store, &i))
        .unwrap_or_default();
    println!("  corpus: {total_items} items");
    for word in ["gold", "silver", "crown", "harbour"] {
        let q = format!(
            r#"count(for $i in document("x")/site//item
                     where contains(string($i/description), "{word}")
                     return $i)"#
        );
        let n = run_query(&q, store).expect("sweep query runs");
        println!(
            "  '{word}': {} matching items",
            serialize_sequence(store, &n)
        );
    }

    // Structure matters: the same keyword search scoped to closed-auction
    // annotations instead of items.
    let scoped = run_query(
        r#"count(for $a in document("x")/site/closed_auctions/closed_auction
                 where contains(string($a/annotation), "gold")
                 return $a)"#,
        store,
    )
    .expect("scoped query runs");
    println!(
        "\n  scoped to closed-auction annotations: {} matches",
        serialize_sequence(store, &scoped)
    );
}
