//! Quickstart: generate a benchmark document, load it into a store, and
//! run the first benchmark query.
//!
//! ```text
//! cargo run --release --example quickstart [factor]
//! ```

use xmark::prelude::*;

fn main() {
    let factor: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.005);

    println!("== XMark quickstart ==");
    println!("generating benchmark document at scaling factor {factor} …");
    let doc = generate_document(factor);
    println!(
        "  {} bytes, {} items, {} persons, {} open + {} closed auctions ({:?})",
        doc.stats.bytes,
        doc.stats.cardinalities.items,
        doc.stats.cardinalities.persons,
        doc.stats.cardinalities.open_auctions,
        doc.stats.cardinalities.closed_auctions,
        doc.elapsed,
    );

    println!("\nbulkloading into System D (structural summary store) …");
    let loaded = load_system(SystemId::D, &doc.xml);
    println!(
        "  {} nodes, {:.1} kB resident, loaded in {:?}",
        loaded.store.node_count(),
        loaded.size_bytes as f64 / 1024.0,
        loaded.load_time,
    );

    println!("\nrunning Q1 (exact-match baseline):");
    println!("{}", query(1).text.trim());
    let m = measure_query(&loaded, 1);
    println!(
        "\n  -> {} item(s) in {:?} compile + {:?} execute",
        m.result_items, m.compile_time, m.execute_time,
    );

    let out = run_query(query(1).text, loaded.store.as_ref()).expect("Q1 runs");
    println!(
        "  result: {}",
        serialize_sequence(loaded.store.as_ref(), &out)
    );

    println!("\nall twenty queries:");
    for q in &ALL_QUERIES {
        let m = measure_query(&loaded, q.number);
        println!(
            "  Q{:>2} {:<62} {:>6} items {:>10.3?}",
            q.number,
            q.title,
            m.result_items,
            m.total(),
        );
    }
}
