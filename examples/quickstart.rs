//! Quickstart: run a benchmark session through the `Benchmark` façade,
//! then poke at the loaded store through the streaming axis cursors.
//!
//! ```text
//! cargo run --release --example quickstart [factor]
//! ```

use xmark::prelude::*;

fn main() {
    let factor: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.005);

    println!("== XMark quickstart ==");
    println!("running the benchmark at scaling factor {factor} on System D …");

    // One builder call replaces the generate -> load -> measure loop.
    let report = Benchmark::at_factor(factor)
        .systems(&[SystemId::D])
        .queries(1..=20)
        .run();

    let stats = &report.document.stats;
    println!(
        "  document: {} bytes, {} elements (max depth {}), {} items, {} persons, {} open + {} closed auctions ({:?})",
        stats.bytes,
        stats.elements,
        stats.max_depth,
        stats.cardinalities.items,
        stats.cardinalities.persons,
        stats.cardinalities.open_auctions,
        stats.cardinalities.closed_auctions,
        report.document.elapsed,
    );

    let loaded = report.load(SystemId::D).expect("System D was loaded");
    println!(
        "  store: {} nodes, {:.1} kB resident, loaded in {:?}",
        loaded.store.node_count(),
        loaded.size_bytes as f64 / 1024.0,
        loaded.load_time,
    );

    println!("\nQ1 (exact-match baseline):");
    println!("{}", query(1).text.trim());
    let m = report.measurement(SystemId::D, 1).expect("Q1 measured");
    println!(
        "\n  -> {} item(s) in {:?} parse + {:?} plan + {:?} execute",
        m.result_items, m.parse_time, m.plan_time, m.execute_time,
    );
    let compiled = compile(query(1).text, loaded.store.as_ref()).expect("Q1 compiles");
    println!("  plan (EXPLAIN):");
    for line in compiled.explain().lines() {
        println!("    {line}");
    }
    let out = run_query(query(1).text, loaded.store.as_ref()).expect("Q1 runs");
    println!(
        "  result: {}",
        serialize_sequence(loaded.store.as_ref(), &out)
    );

    println!("\nall twenty queries:");
    for q in &ALL_QUERIES {
        let m = report.measurement(SystemId::D, q.number).expect("measured");
        println!(
            "  Q{:>2} {:<62} {:>6} items {:>10.3?}",
            q.number,
            q.title,
            m.result_items,
            m.total(),
        );
    }

    // The streaming axis API: walk the store without materializing any
    // intermediate node sets.
    let store = loaded.store.as_ref();
    let root = store.root();
    let regions = store
        .children_named_iter(root, "regions")
        .next()
        .expect("site has regions");
    let items = store.count_descendants_named(regions, "item");
    let first_african = store
        .descendants_named_iter(regions, "item")
        .next()
        .expect("at least one item");
    println!(
        "\nstreaming axes: {} items under <regions>; first is {} ({:?})",
        items,
        first_african,
        store
            .attributes_iter(first_african)
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>(),
    );
}
