//! End-to-end benchmark flow: the measurements behind Tables 1–3 and
//! Fig. 4 must be producible and internally consistent (this suite runs at
//! a miniature factor; the bench binaries produce the real numbers).

use xmark::prelude::*;

#[test]
fn table1_flow_loads_all_mass_storage_systems() {
    let doc = generate_document(0.002);
    let mut sizes = Vec::new();
    for system in SystemId::MASS_STORAGE {
        let loaded = load_system(system, &doc.xml);
        assert!(loaded.size_bytes > 0, "{system} reports no size");
        assert!(loaded.store.node_count() > 1000);
        sizes.push((system, loaded.size_bytes));
    }
    // All database sizes are within an order of magnitude of the document,
    // as in Table 1 (142–345 MB for a 100 MB document).
    for &(system, size) in &sizes {
        let ratio = size as f64 / doc.stats.bytes as f64;
        assert!(
            (0.3..12.0).contains(&ratio),
            "{system} size ratio {ratio} is implausible"
        );
    }
}

#[test]
fn table2_flow_phases_are_measured() {
    let doc = generate_document(0.002);
    for system in [SystemId::A, SystemId::B, SystemId::C] {
        let loaded = load_system(system, &doc.xml);
        for q in [1, 2] {
            let m = measure_query(&loaded, q);
            assert!(m.metadata_accesses > 0, "{system} Q{q} counted no metadata");
            assert!(m.compile_share_percent() > 0.0);
            assert!(m.compile_share_percent() < 100.0);
        }
    }
}

#[test]
fn table2_shape_b_touches_more_metadata_than_a() {
    let doc = generate_document(0.002);
    let a = load_system(SystemId::A, &doc.xml);
    let b = load_system(SystemId::B, &doc.xml);
    let c = load_system(SystemId::C, &doc.xml);
    for q in [1, 2] {
        let ma = measure_query(&a, q).metadata_accesses;
        let mb = measure_query(&b, q).metadata_accesses;
        let mc = measure_query(&c, q).metadata_accesses;
        assert!(
            mb > ma,
            "Q{q}: fragmented B must touch more metadata than A"
        );
        assert!(mc <= ma, "Q{q}: DTD-schema C must touch least metadata");
    }
}

#[test]
fn table3_flow_all_thirteen_queries_on_all_six_systems() {
    let doc = generate_document(0.001);
    for system in SystemId::MASS_STORAGE {
        let loaded = load_system(system, &doc.xml);
        for &q in TABLE3_QUERIES.iter() {
            let m = measure_query(&loaded, q);
            assert!(m.total().as_nanos() > 0, "{system} Q{q} measured nothing");
        }
    }
}

#[test]
fn fig4_flow_embedded_system_runs_all_twenty() {
    // Fig. 4 runs Q1–Q20 on System G at 100 kB and 1 MB; the flow is
    // validated here at 100 kB only (1 MB runs in the bench binary).
    let doc = generate_document(0.001);
    let loaded = load_system(SystemId::G, &doc.xml);
    for q in 1..=20 {
        let m = measure_query(&loaded, q);
        assert_eq!(m.query, q);
    }
}

#[test]
fn summary_store_wins_q6_q7_shape() {
    // The Table 3 shape check the paper highlights: System D's structural
    // summary makes the regular-path counts Q6/Q7 "surprisingly fast" —
    // it must not materialize any nodes, making it far faster than an
    // interpretive walk of the same document. Since the shared
    // element-name index, *optimized* System G answers these counts from
    // posting-range arithmetic too, so the walking baseline is pinned
    // with `PlanMode::Naive` — the traversal the paper's System G
    // performs — and G's indexed plan must now beat its own walk.
    let doc = generate_document(0.01);
    let d = load_system(SystemId::D, &doc.xml);
    let g = load_system(SystemId::G, &doc.xml);
    for q in [6, 7] {
        // Compile once, then take the best of three executions to
        // de-noise.
        let time = |l: &LoadedStore, mode: PlanMode| {
            let store = l.store.as_ref();
            let compiled = compile_with_mode(query(q).text, store, mode).unwrap();
            (0..3)
                .map(|_| {
                    let start = std::time::Instant::now();
                    execute(&compiled, store).unwrap();
                    start.elapsed()
                })
                .min()
                .expect("three samples")
        };
        let td = time(&d, PlanMode::Optimized);
        let tg_walk = time(&g, PlanMode::Naive);
        assert!(
            td < tg_walk,
            "Q{q}: System D ({td:?}) must beat the naive walker ({tg_walk:?})"
        );
        let tg_indexed = time(&g, PlanMode::Optimized);
        assert!(
            tg_indexed < tg_walk,
            "Q{q}: G's shared-index count ({tg_indexed:?}) must beat its own \
             walk ({tg_walk:?})"
        );
    }
}

#[test]
fn q10_produces_large_output() {
    // §7: "the bulk of the work lies in the construction of the answer set
    // which amounts to more than 10 MB" at factor 1.0 — proportionally ~20
    // kB at factor 0.002 (output exceeds its input share).
    let doc = generate_document(0.002);
    let loaded = load_system(SystemId::D, &doc.xml);
    let m = measure_query(&loaded, 10);
    assert!(
        m.result_bytes > 10_000,
        "Q10 output only {} bytes",
        m.result_bytes
    );
}

#[test]
fn parse_only_baseline_is_cheaper_than_any_bulkload() {
    // §7 quotes expat's 4.9 s scan vs 50–781 s bulkloads: scanning must be
    // much cheaper than any full load.
    let doc = generate_document(0.005);
    let start = std::time::Instant::now();
    let tokens = xmark::xml::parser::scan_only(&doc.xml).unwrap();
    let scan = start.elapsed();
    assert!(tokens > 10_000);
    for system in [SystemId::A, SystemId::B] {
        let loaded = load_system(system, &doc.xml);
        assert!(
            loaded.load_time > scan,
            "{}: bulkload ({:?}) must cost more than a raw scan ({scan:?})",
            system,
            loaded.load_time
        );
    }
}
