//! Cross-backend concurrency property: N threads running the same query
//! mix over ONE shared store must produce canonical outputs identical to
//! the single-threaded run — for every one of the seven backends.
//!
//! This is the correctness half of the concurrent service layer. The
//! throughput half (`table4_throughput`) only makes sense if sharing a
//! store across threads never changes an answer: no torn metadata
//! counters, no cache cross-talk, no evaluator state leaking between
//! concurrent executions.

use std::sync::Arc;
use std::thread;

use xmark::prelude::*;

/// A mix that exercises every access-path family: ID lookup (Q1),
/// positional index (Q2), casting (Q5), structural-summary counting (Q6),
/// reference chasing / hash join (Q8), and long path traversal (Q17).
const MIX: [usize; 6] = [1, 2, 5, 6, 8, 17];
const THREADS: usize = 4;
/// Closed-loop rounds each thread runs over the whole mix.
const ROUNDS: usize = 2;

fn assert_concurrent_matches_sequential(system: SystemId, xml: &str) {
    let loaded = load_system(system, xml);

    // Ground truth: the single-threaded canonical output of each query.
    let expected: Vec<String> = MIX
        .iter()
        .map(|&q| canonical_output(loaded.store.as_ref(), q))
        .collect();

    let store: Arc<dyn XmlStore> = Arc::from(loaded.store);
    let outputs: Vec<Vec<String>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..ROUNDS {
                        // Stagger the order per thread and round so
                        // different queries genuinely overlap.
                        for i in 0..MIX.len() {
                            let q = MIX[(i + t + round) % MIX.len()];
                            seen.push((q, canonical_output(store.as_ref(), q)));
                        }
                    }
                    let mut per_query = vec![String::new(); MIX.len()];
                    for (q, out) in seen {
                        let slot = MIX.iter().position(|&m| m == q).unwrap();
                        per_query[slot] = out;
                    }
                    per_query
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    for (t, per_query) in outputs.iter().enumerate() {
        for (slot, &q) in MIX.iter().enumerate() {
            assert_eq!(
                per_query[slot], expected[slot],
                "{system}: thread {t} diverged from the sequential run on Q{q}"
            );
        }
    }
}

macro_rules! concurrency_test {
    ($name:ident, $system:expr) => {
        #[test]
        fn $name() {
            let doc = generate_document(0.002);
            assert_concurrent_matches_sequential($system, &doc.xml);
        }
    };
}

concurrency_test!(system_a_concurrent_equals_sequential, SystemId::A);
concurrency_test!(system_b_concurrent_equals_sequential, SystemId::B);
concurrency_test!(system_c_concurrent_equals_sequential, SystemId::C);
concurrency_test!(system_d_concurrent_equals_sequential, SystemId::D);
concurrency_test!(system_e_concurrent_equals_sequential, SystemId::E);
concurrency_test!(system_f_concurrent_equals_sequential, SystemId::F);
concurrency_test!(system_g_concurrent_equals_sequential, SystemId::G);

/// The service layer itself, driven over every backend: worker-pool
/// results carry the same cardinalities the sequential evaluator reports.
#[test]
fn service_pool_preserves_cardinalities_on_all_backends() {
    let session = Benchmark::at_factor(0.001).queries([1, 6]).generate();
    for system in SystemId::ALL {
        let loaded = session.load(system);
        let seq_items: Vec<usize> = [1, 6]
            .iter()
            .map(|&q| measure_query(&loaded, q).result_items)
            .collect();
        let service = QueryService::start(Arc::from(loaded.store), THREADS);
        let report = service.run_mix(&[1, 6], 8);
        assert_eq!(report.requests, 8, "{system}: lost requests");
        // Each query ran 4 times; the cardinality every worker observed
        // matches the sequential run (run_mix itself asserts that all
        // concurrent requests of a query agreed with each other).
        for (&q, &expected_items) in [1usize, 6].iter().zip(&seq_items) {
            let stats = report.stats(q).unwrap_or_else(|| {
                panic!("{system}: no latency stats for Q{q}");
            });
            assert_eq!(stats.count, 4, "{system}: Q{q} request count");
            assert!(stats.p50 <= stats.p99, "{system}: Q{q} percentile order");
            assert_eq!(
                stats.result_items, expected_items,
                "{system}: Q{q} cardinality under the pool diverged from sequential"
            );
        }
    }
}
