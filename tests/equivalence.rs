//! Cross-backend output equivalence.
//!
//! §1 of the paper: "the benchmark document and the queries can aid in the
//! verification of query processors … the problem of deciding when to
//! regard the output of XML query processors as equivalent still requires
//! research." This suite is that verification: every one of the twenty
//! queries must produce the *same canonical output* on all seven storage
//! architectures plus the disk-resident backend H. A divergence means
//! one backend's navigation or access path is wrong.

use xmark::prelude::*;

fn canonical_all_systems(factor: f64, query_no: usize) -> Vec<(SystemId, String)> {
    let doc = generate_document(factor);
    SystemId::EXTENDED
        .iter()
        .map(|&system| {
            let loaded = load_system(system, &doc.xml);
            (system, canonical_output(loaded.store.as_ref(), query_no))
        })
        .collect()
}

fn assert_equivalent(query_no: usize) {
    let outputs = canonical_all_systems(0.002, query_no);
    let (ref_system, reference) = &outputs[0];
    for (system, output) in &outputs[1..] {
        assert_eq!(
            output, reference,
            "Q{query_no}: {system} disagrees with {ref_system}"
        );
    }
}

macro_rules! equivalence_test {
    ($name:ident, $n:expr) => {
        #[test]
        fn $name() {
            assert_equivalent($n);
        }
    };
}

equivalence_test!(q1_exact_match, 1);
equivalence_test!(q2_ordered_access, 2);
equivalence_test!(q3_array_lookup, 3);
equivalence_test!(q4_before_operator, 4);
equivalence_test!(q5_casting, 5);
equivalence_test!(q6_regular_paths, 6);
equivalence_test!(q7_count_nonexistent, 7);
equivalence_test!(q8_reference_join, 8);
equivalence_test!(q9_three_way_join, 9);
equivalence_test!(q10_construction, 10);
equivalence_test!(q11_value_join, 11);
equivalence_test!(q12_selective_value_join, 12);
equivalence_test!(q13_reconstruction, 13);
equivalence_test!(q14_fulltext, 14);
equivalence_test!(q15_deep_path, 15);
equivalence_test!(q16_path_with_ascent, 16);
equivalence_test!(q17_missing_elements, 17);
equivalence_test!(q18_udf, 18);
equivalence_test!(q19_sorting, 19);
equivalence_test!(q20_aggregation, 20);

/// The equivalence property also holds at a different scale and seed, so
/// it is not an artifact of one particular document instance.
#[test]
fn equivalence_is_scale_independent() {
    let config = xmark::gen::GeneratorConfig {
        factor: 0.004,
        seed: 7,
    };
    let xml = xmark::gen::generate_string(&config);
    let reference = {
        let store = build_store(SystemId::G, &xml).unwrap();
        (1..=20)
            .map(|q| canonical_output(store.as_ref(), q))
            .collect::<Vec<_>>()
    };
    for system in [SystemId::A, SystemId::C, SystemId::D, SystemId::E] {
        let store = build_store(system, &xml).unwrap();
        for (i, expected) in reference.iter().enumerate() {
            let got = canonical_output(store.as_ref(), i + 1);
            assert_eq!(&got, expected, "Q{} differs on {system} (seed 7)", i + 1);
        }
    }
}
