//! Plan-snapshot golden tests: the `EXPLAIN` rendering of all twenty
//! benchmark queries, pinned for Systems A and E on the canonical
//! document (factor 0.002, seed 0).
//!
//! Any planner change — a different join strategy, a moved filter, a
//! gained or lost access-path annotation, a changed cardinality estimate
//! — shows up here as a readable diff, so plan regressions are visible in
//! review instead of only as runtime slowdowns. To update after an
//! intentional planner change, regenerate (render_all below is the
//! generator) and paste the new rendering.

use xmark::prelude::*;

/// Render all twenty plans for one system in the pinned format.
fn render_all(system: SystemId, xml: &str) -> String {
    let store = build_store(system, xml).unwrap();
    let mut out = String::new();
    for q in &ALL_QUERIES {
        let compiled = compile(q.text, store.as_ref()).unwrap();
        out.push_str(&format!("=== {:?} Q{} ===\n", system, q.number));
        out.push_str(&compiled.explain());
    }
    out
}

fn assert_explains_match(system: SystemId, expected: &str) {
    let doc = generate_document(0.002);
    let actual = render_all(system, &doc.xml);
    if actual != expected {
        // Print the divergent lines so the diff is reviewable from the
        // test log.
        for (a, e) in actual.lines().zip(expected.lines()) {
            if a != e {
                println!("- {e}");
                println!("+ {a}");
            }
        }
        panic!(
            "{system}: EXPLAIN output changed — if intentional, update the \
             golden in tests/explain.rs"
        );
    }
}

const EXPLAIN_A: &str = r#"=== A Q1 ===
Shard parallel merge=append
Project $b/name/text()->vals("name")
  NestedLoop
    For $b in PathScan /site/people/person[./@id = "person0"]->id("person0") ~51
=== A Q2 ===
Shard parallel merge=append
Project <increase>{$b/bidder[1]/increase/text()->vals("increase")}</increase>
  NestedLoop
    For $b in PathScan /site/open_auctions/open_auction ~24 [memo] [batch=128]
=== A Q3 ===
Shard parallel merge=append
Project <increase first="{$b/bidder[1]/increase/text()->vals("increase")}" last="{$b/bidder[last()]/inc…
  NestedLoop
    For $b in PathScan /site/open_auctions/open_auction ~24 [memo] [batch=128]
    Filter@1 zero-or-one($b/bidder[1]/increase/text()->vals("increase")) * 2 <= $b/bidder[last()]/increase/t…
=== A Q4 ===
Shard parallel merge=append
Project <history>{$b/reserve/text()->vals("reserve")}</history>
  NestedLoop
    For $b in PathScan /site/open_auctions/open_auction ~24 [memo] [batch=128]
    Filter@1 some $pr1 in $b/bidder/personref[./@person = "person20"], $pr2 in $b/bidder/personref[./@person…
=== A Q5 ===
Shard parallel merge=sum
Eval count(flwor(… return $i/price))
  Project $i/price
    NestedLoop
      For $i in PathScan /site/closed_auctions/closed_auction ~19 [memo] [batch=128]
      Filter@1 $i/price/text()->vals("price") >= 40
=== A Q6 ===
Shard parallel merge=append
Project count($b//item)
  Aggregate count(//item) ~43 [idx]
    PathScan $b
  NestedLoop
    For $b in PathScan /site/regions ~1 [memo] [batch=128]
=== A Q7 ===
Shard parallel merge=append
Project count($p//description) + count($p//annotation) + count($p//email)
  Aggregate count(//description) ~73 [idx]
    PathScan $p
  Aggregate count(//annotation) ~36 [idx]
    PathScan $p
  Aggregate count(//email) [idx]
    PathScan $p
  NestedLoop
    For $p in PathScan /site ~1 [memo] [batch=128]
=== A Q8 ===
Shard parallel merge=append
Project <item person="{$p/name/text()->vals("name")}">{count($a)}</item>
  NestedLoop
    For $p in PathScan /site/people/person ~51 [memo] [batch=128]
    Let $a in
      Project $t
        IndexLookup $t/buyer/@person = $p/@id ~19
          index $t [memo] in PathScan /site/closed_auctions/closed_auction ~19 [memo] [batch=128]
=== A Q9 ===
Shard parallel merge=append
Project <person name="{$p/name/text()->vals("name")}">{$a}</person>
  NestedLoop
    For $p in PathScan /site/people/person ~51 [memo] [batch=128]
    Let $a in
      Project <item>{$e/name/text()->vals("name")}</item>
        HashJoin $t/itemref/@item = $e/@id ~19x43 [batch=64]
          probe $t in PathScan /site/closed_auctions/closed_auction ~19 [memo] [batch=128]
          build $e [memo] in PathScan /site/regions/europe/item ~43 [memo] [batch=128]
          Filter@probe $t/buyer/@person = $p/@id [memo]
=== A Q10 ===
Shard parallel merge=append
Project <categorie>{(<id>{$i}</id>, $p)}</categorie>
  NestedLoop
    For $i in distinct-values(/site/people/person/profile/interest/@category)
    Let $p in
      Project <personne><statistiques><sexe>{$t/profile/gender/text()->vals("gender")}</sexe><age>{$t/profile…
        IndexLookup $t/profile/interest/@category = $i ~51
          index $t [memo] in PathScan /site/people/person ~51 [memo] [batch=128]
=== A Q11 ===
Shard parallel merge=append
Project <items name="{$p/name/text()->vals("name")}">{count($l)}</items>
  NestedLoop
    For $p in PathScan /site/people/person ~51 [memo] [batch=128]
    Let $l in
      Project $i
        NestedLoop
          For $i in PathScan /site/open_auctions/open_auction/initial ~24 [memo] [batch=128]
          Filter@1 $p/profile/@income > 5000 * $i/text()
=== A Q12 ===
Shard parallel merge=append
Project <items person="{$p/name/text()->vals("name")}">{count($l)}</items>
  NestedLoop
    For $p in PathScan /site/people/person ~51 [memo] [batch=128]
    Filter@1 $p/profile/@income > 50000
    Let $l in
      Project $i
        NestedLoop
          For $i in PathScan /site/open_auctions/open_auction/initial ~24 [memo] [batch=128]
          Filter@1 $p/profile/@income > 5000 * $i/text()
=== A Q13 ===
Shard parallel merge=append
Project <item name="{$i/name/text()->vals("name")}">{$i/description}</item>
  NestedLoop
    For $i in PathScan /site/regions/australia/item ~43 [memo] [batch=128]
=== A Q14 ===
Shard parallel merge=append
Project $i/name/text()->vals("name")
  NestedLoop
    For $i in PathScan /site//item->idx ~43 [memo] [batch=128]
    Filter@1 contains(string($i/description), "gold")
=== A Q15 ===
Shard parallel merge=append
Project <text>{$a}</text>
  NestedLoop
    For $a in PathScan /site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()->vals("keyword") ~119 [memo]
=== A Q16 ===
Shard parallel merge=append
Project <person id="{$a/seller/@person}"/>
  NestedLoop
    For $a in PathScan /site/closed_auctions/closed_auction ~19 [memo] [batch=128]
    Filter@1 not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()-…
=== A Q17 ===
Shard parallel merge=append
Project <person name="{$p/name/text()->vals("name")}"/>
  NestedLoop
    For $p in PathScan /site/people/person ~51 [memo] [batch=128]
    Filter@1 empty($p/homepage/text()->vals("homepage"))
=== A Q18 ===
Shard parallel merge=append
Function local:convert($v)
  Eval 2.20371 * $v
Project local:convert(zero-or-one($i/reserve/text()->vals("reserve")))
  NestedLoop
    For $i in PathScan /site/open_auctions/open_auction ~24 [memo] [batch=128]
=== A Q19 ===
Shard gather
Project <item name="{$k}">{$b/location/text()->vals("location")}</item>
  Sort zero-or-one($b/location) ascending
    NestedLoop
      For $b in PathScan /site/regions//item->idx ~43 [memo] [batch=128]
      Let $k in PathScan $b/name/text()->vals("name") ~96
=== A Q20 ===
Shard gather
Eval <result><preferred>{count(/site/people/person/profile[./@income >= 100000])}</preferred><standa…
  Project $p
    NestedLoop
      For $p in PathScan /site/people/person ~51 [memo] [batch=128]
      Filter@1 empty($p/profile/@income)
"#;

const EXPLAIN_E: &str = r#"=== E Q1 ===
Shard parallel merge=append
Project $b/name/text()->vals("name")
  NestedLoop
    For $b in PathScan /site/people/person[./@id = "person0"]->id("person0") ~51
=== E Q2 ===
Shard parallel merge=append
Project <increase>{$b/bidder[1]/increase/text()->vals("increase")}</increase>
  NestedLoop
    For $b in PathScan /site/open_auctions/open_auction ~24 [memo] [batch=128]
=== E Q3 ===
Shard parallel merge=append
Project <increase first="{$b/bidder[1]/increase/text()->vals("increase")}" last="{$b/bidder[last()]/inc…
  NestedLoop
    For $b in PathScan /site/open_auctions/open_auction ~24 [memo] [batch=128]
    Filter@1 zero-or-one($b/bidder[1]/increase/text()->vals("increase")) * 2 <= $b/bidder[last()]/increase/t…
=== E Q4 ===
Shard parallel merge=append
Project <history>{$b/reserve/text()->vals("reserve")}</history>
  NestedLoop
    For $b in PathScan /site/open_auctions/open_auction ~24 [memo] [batch=128]
    Filter@1 some $pr1 in $b/bidder/personref[./@person = "person20"], $pr2 in $b/bidder/personref[./@person…
=== E Q5 ===
Shard parallel merge=sum
Eval count(flwor(… return $i/price))
  Project $i/price
    NestedLoop
      For $i in PathScan /site/closed_auctions/closed_auction ~19 [memo] [batch=128]
      Filter@1 $i/price/text()->vals("price") >= 40
=== E Q6 ===
Shard parallel merge=append
Project count($b//item)
  Aggregate count(//item) ~43 [summary]
    PathScan $b
  NestedLoop
    For $b in PathScan /site/regions ~1 [memo] [batch=128]
=== E Q7 ===
Shard parallel merge=append
Project count($p//description) + count($p//annotation) + count($p//email)
  Aggregate count(//description) ~73 [summary]
    PathScan $p
  Aggregate count(//annotation) ~36 [summary]
    PathScan $p
  Aggregate count(//email) [summary]
    PathScan $p
  NestedLoop
    For $p in PathScan /site ~1 [memo] [batch=128]
=== E Q8 ===
Shard parallel merge=append
Project <item person="{$p/name/text()->vals("name")}">{count($a)}</item>
  NestedLoop
    For $p in PathScan /site/people/person ~51 [memo] [batch=128]
    Let $a in
      Project $t
        IndexLookup $t/buyer/@person = $p/@id ~19
          index $t [memo] in PathScan /site/closed_auctions/closed_auction ~19 [memo] [batch=128]
=== E Q9 ===
Shard parallel merge=append
Project <person name="{$p/name/text()->vals("name")}">{$a}</person>
  NestedLoop
    For $p in PathScan /site/people/person ~51 [memo] [batch=128]
    Let $a in
      Project <item>{$e/name/text()->vals("name")}</item>
        HashJoin $t/itemref/@item = $e/@id ~19x43 [batch=64]
          probe $t in PathScan /site/closed_auctions/closed_auction ~19 [memo] [batch=128]
          build $e [memo] in PathScan /site/regions/europe/item ~43 [memo] [batch=128]
          Filter@probe $t/buyer/@person = $p/@id [memo]
=== E Q10 ===
Shard parallel merge=append
Project <categorie>{(<id>{$i}</id>, $p)}</categorie>
  NestedLoop
    For $i in distinct-values(/site/people/person/profile/interest/@category)
    Let $p in
      Project <personne><statistiques><sexe>{$t/profile/gender/text()->vals("gender")}</sexe><age>{$t/profile…
        IndexLookup $t/profile/interest/@category = $i ~51
          index $t [memo] in PathScan /site/people/person ~51 [memo] [batch=128]
=== E Q11 ===
Shard parallel merge=append
Project <items name="{$p/name/text()->vals("name")}">{count($l)}</items>
  NestedLoop
    For $p in PathScan /site/people/person ~51 [memo] [batch=128]
    Let $l in
      Project $i
        NestedLoop
          For $i in PathScan /site/open_auctions/open_auction/initial ~24 [memo] [batch=128]
          Filter@1 $p/profile/@income > 5000 * $i/text()
=== E Q12 ===
Shard parallel merge=append
Project <items person="{$p/name/text()->vals("name")}">{count($l)}</items>
  NestedLoop
    For $p in PathScan /site/people/person ~51 [memo] [batch=128]
    Filter@1 $p/profile/@income > 50000
    Let $l in
      Project $i
        NestedLoop
          For $i in PathScan /site/open_auctions/open_auction/initial ~24 [memo] [batch=128]
          Filter@1 $p/profile/@income > 5000 * $i/text()
=== E Q13 ===
Shard parallel merge=append
Project <item name="{$i/name/text()->vals("name")}">{$i/description}</item>
  NestedLoop
    For $i in PathScan /site/regions/australia/item ~43 [memo] [batch=128]
=== E Q14 ===
Shard parallel merge=append
Project $i/name/text()->vals("name")
  NestedLoop
    For $i in PathScan /site//item ~43 [memo] [batch=128]
    Filter@1 contains(string($i/description), "gold")
=== E Q15 ===
Shard parallel merge=append
Project <text>{$a}</text>
  NestedLoop
    For $a in PathScan /site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()->vals("keyword") ~119 [memo]
=== E Q16 ===
Shard parallel merge=append
Project <person id="{$a/seller/@person}"/>
  NestedLoop
    For $a in PathScan /site/closed_auctions/closed_auction ~19 [memo] [batch=128]
    Filter@1 not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()-…
=== E Q17 ===
Shard parallel merge=append
Project <person name="{$p/name/text()->vals("name")}"/>
  NestedLoop
    For $p in PathScan /site/people/person ~51 [memo] [batch=128]
    Filter@1 empty($p/homepage/text()->vals("homepage"))
=== E Q18 ===
Shard parallel merge=append
Function local:convert($v)
  Eval 2.20371 * $v
Project local:convert(zero-or-one($i/reserve/text()->vals("reserve")))
  NestedLoop
    For $i in PathScan /site/open_auctions/open_auction ~24 [memo] [batch=128]
=== E Q19 ===
Shard gather
Project <item name="{$k}">{$b/location/text()->vals("location")}</item>
  Sort zero-or-one($b/location) ascending
    NestedLoop
      For $b in PathScan /site/regions//item ~43 [memo] [batch=128]
      Let $k in PathScan $b/name/text()->vals("name") ~96
=== E Q20 ===
Shard gather
Eval <result><preferred>{count(/site/people/person/profile[./@income >= 100000])}</preferred><standa…
  Project $p
    NestedLoop
      For $p in PathScan /site/people/person ~51 [memo] [batch=128]
      Filter@1 empty($p/profile/@income)
"#;

#[test]
fn explain_golden_system_a() {
    assert_explains_match(SystemId::A, EXPLAIN_A);
}

#[test]
fn explain_golden_system_e() {
    assert_explains_match(SystemId::E, EXPLAIN_E);
}

#[test]
fn backend_capabilities_show_up_in_plans() {
    let doc = generate_document(0.002);
    let xml = &doc.xml;
    let plan_for = |system: SystemId, text: &str| {
        let store = build_store(system, xml).unwrap();
        compile(text, store.as_ref()).unwrap().explain()
    };
    // System C's positional index and inlined columns annotate Q2's plan…
    let c_q2 = plan_for(SystemId::C, query(2).text);
    assert!(
        c_q2.contains("->pos(1)"),
        "C plans bidder[1] positionally:\n{c_q2}"
    );
    assert!(
        c_q2.contains("->inlined(\"increase\")"),
        "C plans increase/text() from entity columns:\n{c_q2}"
    );
    // `bidder[last()]` as a scan source (Q3 buries it in a truncated
    // filter line): the PathScan line carries the marker untruncated.
    let c_last = plan_for(
        SystemId::C,
        "for $x in /site/open_auctions/open_auction/bidder[last()] return $x",
    );
    assert!(
        c_last.contains("->pos(last)"),
        "C plans bidder[last()] positionally:\n{c_last}"
    );
    // …while System G (no capabilities) plans the same queries generically.
    let g_q2 = plan_for(SystemId::G, query(2).text);
    assert!(
        !g_q2.contains("->pos("),
        "G has no positional index:\n{g_q2}"
    );
    assert!(!g_q2.contains("->inlined("), "G inlines nothing:\n{g_q2}");
    // System F has neither an ID index nor statistics: no probe, no ~N.
    let f_q1 = plan_for(SystemId::F, query(1).text);
    assert!(!f_q1.contains("->id("), "F scans for Q1:\n{f_q1}");
    assert!(!f_q1.contains('~'), "F plans without estimates:\n{f_q1}");
    // Summary-backed counting is visible on D, absent on A.
    let d_q6 = plan_for(SystemId::D, query(6).text);
    assert!(
        d_q6.contains("[summary]"),
        "D counts from the summary:\n{d_q6}"
    );
    let a_q6 = plan_for(SystemId::A, query(6).text);
    assert!(!a_q6.contains("[summary]"), "A counts by walking:\n{a_q6}");
}

#[test]
fn naive_plans_contain_no_rewrites() {
    let doc = generate_document(0.002);
    let store = build_store(SystemId::E, &doc.xml).unwrap();
    for q in &ALL_QUERIES {
        let naive = compile_with_mode(q.text, store.as_ref(), PlanMode::Naive).unwrap();
        let rendered = naive.explain();
        for operator in [
            "HashJoin",
            "IndexLookup",
            "Aggregate",
            "->id(",
            "->pos(",
            "->inlined(",
            "->idx",
            "[idx]",
            "->vals(",
            "[batch=",
        ] {
            assert!(
                !rendered.contains(operator),
                "Q{}: naive plan must not contain {operator}:\n{rendered}",
                q.number
            );
        }
    }
}
