//! Golden results on the canonical benchmark document (factor 0.002,
//! seed 0).
//!
//! These tests pin the *semantics* of the twenty queries to concrete
//! values, so a regression in the generator, the stores, or the evaluator
//! shows up as a changed number, not just as cross-backend disagreement.

use xmark::prelude::*;
use xmark::query::Item;

fn loaded() -> LoadedStore {
    let doc = generate_document(0.002);
    load_system(SystemId::D, &doc.xml)
}

fn run(loaded: &LoadedStore, n: usize) -> Vec<Item> {
    run_query(query(n).text, loaded.store.as_ref()).unwrap_or_else(|e| panic!("Q{n}: {e}"))
}

fn as_number(loaded: &LoadedStore, items: &[Item]) -> f64 {
    assert_eq!(items.len(), 1, "expected a single number");
    xmark::query::atomize(loaded.store.as_ref(), &items[0])
        .parse()
        .expect("numeric result")
}

#[test]
fn q1_returns_exactly_one_name() {
    let l = loaded();
    let out = run(&l, 1);
    assert_eq!(out.len(), 1);
    let name = xmark::query::atomize(l.store.as_ref(), &out[0]);
    assert!(
        name.contains(' '),
        "person names are 'Given Family': {name}"
    );
}

#[test]
fn q2_emits_one_increase_per_auction() {
    let l = loaded();
    let out = run(&l, 2);
    let auctions = run_query(
        r#"count(document("x")/site/open_auctions/open_auction)"#,
        l.store.as_ref(),
    )
    .unwrap();
    let total = as_number(&l, &auctions) as usize;
    // Q2 constructs one <increase> per auction; auctions without bidders
    // yield an empty element.
    assert_eq!(out.len(), total);
}

#[test]
fn q3_selects_a_nonempty_strict_subset() {
    let l = loaded();
    let q2 = run(&l, 2).len();
    let q3 = run(&l, 3).len();
    assert!(q3 > 0, "Q3 must have matches (doubled increases exist)");
    assert!(q3 < q2, "Q3 is a filtered subset of the auctions");
}

#[test]
fn q5_counts_expensive_sales() {
    let l = loaded();
    let count = as_number(&l, &run(&l, 5)) as usize;
    let closed = generate_document(0.002).stats.cardinalities.closed_auctions;
    assert!(count > 0 && count <= closed);
    // Prices are 1.5 + Exp(mean 100): P(price >= 40) ≈ 0.68. Allow slack
    // for the small sample.
    let fraction = count as f64 / closed as f64;
    assert!(
        (0.4..0.95).contains(&fraction),
        "Q5 selectivity {fraction} out of expected band"
    );
}

#[test]
fn q6_counts_items_on_all_continents() {
    let l = loaded();
    let out = run(&l, 6);
    // `$b` binds to the single <regions> element, so Q6 returns one count:
    // the items across all continents.
    assert_eq!(out.len(), 1);
    let cards = generate_document(0.002).stats.cardinalities;
    assert_eq!(as_number(&l, &out) as usize, cards.items);
}

#[test]
fn q7_counts_prose_with_nonexistent_email_tag() {
    let l = loaded();
    let count = as_number(&l, &run(&l, 7)) as usize;
    assert!(count > 0);
    // //email never exists; the count equals descriptions + annotations.
    let descriptions = as_number(
        &l,
        &run_query(
            r#"count(document("x")/site//description)"#,
            l.store.as_ref(),
        )
        .unwrap(),
    ) as usize;
    let annotations = as_number(
        &l,
        &run_query(r#"count(document("x")/site//annotation)"#, l.store.as_ref()).unwrap(),
    ) as usize;
    assert_eq!(count, descriptions + annotations);
}

#[test]
fn q8_covers_every_person_and_counts_all_sales() {
    let l = loaded();
    let out = run(&l, 8);
    let cards = generate_document(0.002).stats.cardinalities;
    assert_eq!(out.len(), cards.persons, "one row per person");
    let bought: usize = out
        .iter()
        .map(|item| match item {
            Item::Elem(e) => match e.children.first() {
                Some(Item::Num(n)) => *n as usize,
                _ => 0,
            },
            _ => 0,
        })
        .sum();
    assert_eq!(
        bought, cards.closed_auctions,
        "every closed auction has exactly one buyer"
    );
}

#[test]
fn q10_builds_french_markup() {
    let l = loaded();
    let out = run(&l, 10);
    assert!(!out.is_empty());
    let rendered = serialize_sequence(l.store.as_ref(), &out);
    for tag in [
        "<categorie>",
        "<personne>",
        "<statistiques>",
        "<revenu>",
        "<pagePerso>",
    ] {
        assert!(rendered.contains(tag), "missing {tag}");
    }
    assert!(!rendered.contains("<person "), "markup must be translated");
}

#[test]
fn q11_dominates_q12() {
    let l = loaded();
    let q11 = run(&l, 11).len();
    let q12 = run(&l, 12).len();
    let cards = generate_document(0.002).stats.cardinalities;
    assert_eq!(q11, cards.persons, "Q11 outputs one row per person");
    assert!(q12 < q11, "Q12 restricts to income > 50000");
    assert!(q12 > 0, "some persons earn above 50000");
}

#[test]
fn q13_reconstructs_australia() {
    let l = loaded();
    let out = run(&l, 13);
    let rendered = serialize_sequence(l.store.as_ref(), &out);
    assert!(rendered.contains("<description>"));
    // Reconstruction must be parseable XML.
    for line in rendered.lines() {
        xmark::xml::parse_document(line).expect("Q13 output is well-formed");
    }
}

#[test]
fn q14_finds_gold() {
    let l = loaded();
    let out = run(&l, 14);
    assert!(!out.is_empty(), "the Zipf anchor 'gold' must appear");
    let items = as_number(
        &l,
        &run_query(r#"count(document("x")/site//item)"#, l.store.as_ref()).unwrap(),
    ) as usize;
    assert!(out.len() < items, "not every description mentions gold");
}

#[test]
fn q15_and_q16_agree_on_the_deep_path() {
    let l = loaded();
    let q15 = run(&l, 15);
    let q16 = run(&l, 16);
    assert!(!q15.is_empty(), "deep keyword path must exist");
    // Every Q16 seller corresponds to at least one Q15 keyword, and there
    // can be no more sellers than keywords.
    assert!(q16.len() <= q15.len());
    assert!(!q16.is_empty());
}

#[test]
fn q17_matches_homepage_complement() {
    let l = loaded();
    let out = run(&l, 17);
    let cards = generate_document(0.002).stats.cardinalities;
    let with_homepage = as_number(
        &l,
        &run_query(
            r#"count(for $p in document("x")/site/people/person where not(empty($p/homepage/text())) return $p)"#,
            l.store.as_ref(),
        )
        .unwrap(),
    ) as usize;
    assert_eq!(out.len() + with_homepage, cards.persons);
    assert!(
        out.len() > cards.persons / 4,
        "paper: fraction without homepage is high"
    );
}

#[test]
fn q18_converts_only_existing_reserves() {
    let l = loaded();
    let out = run(&l, 18);
    let reserves = as_number(
        &l,
        &run_query(
            r#"count(document("x")/site/open_auctions/open_auction/reserve)"#,
            l.store.as_ref(),
        )
        .unwrap(),
    ) as usize;
    assert_eq!(out.len(), reserves);
    for item in &out {
        let v: f64 = xmark::query::atomize(l.store.as_ref(), item)
            .parse()
            .unwrap();
        assert!(v > 0.0, "converted currency must be positive");
    }
}

#[test]
fn q19_is_sorted_by_location() {
    let l = loaded();
    let out = run(&l, 19);
    let cards = generate_document(0.002).stats.cardinalities;
    assert_eq!(out.len(), cards.items);
    let keys: Vec<String> = out
        .iter()
        .map(|item| match item {
            Item::Elem(e) => e
                .children
                .iter()
                .map(|c| xmark::query::atomize(l.store.as_ref(), c))
                .collect::<String>(),
            _ => String::new(),
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "Q19 output must be location-sorted");
}

#[test]
fn q20_groups_partition_the_population() {
    let l = loaded();
    let out = run(&l, 20);
    assert_eq!(out.len(), 1);
    let rendered = serialize_sequence(l.store.as_ref(), &out);
    let grab = |tag: &str| -> usize {
        let open = format!("<{tag}>");
        let close = format!("</{tag}>");
        let s = rendered.find(&open).expect("group present") + open.len();
        let e = rendered.find(&close).expect("group closed");
        rendered[s..e].parse().expect("numeric group count")
    };
    let cards = generate_document(0.002).stats.cardinalities;
    let total = grab("preferred") + grab("standard") + grab("challenge") + grab("na");
    assert_eq!(total, cards.persons, "income groups must partition persons");
    assert!(grab("na") > 0, "some persons lack income data");
    assert!(
        grab("standard") > grab("preferred"),
        "income is centred at 45k"
    );
}

#[test]
fn generator_output_is_bit_stable() {
    // §4.5: "deterministic, that is, the output should only depend on the
    // input parameters."
    let a = generate_document(0.002);
    let b = generate_document(0.002);
    assert_eq!(a.xml, b.xml);
}
