//! The persistent index subsystem, end to end: one `@id` code path across
//! all seven backends, warm-index execution equivalent to the naive
//! specification, exactly-once builds under concurrency, and the
//! planner's density gate for IndexScan.

use std::sync::Arc;

use xmark::prelude::*;
use xmark::query::compile_with_mode;
use xmark::query::{canonicalize, execute};
use xmark::store::NaiveStore;

/// Satellite: every backend answers `lookup_id` through the shared
/// attribute-value index — including System G, which used to return
/// `None` (no index at all), and the disk-resident backend H, whose
/// index build reads attribute records through the buffer pool.
#[test]
fn all_backends_answer_id_lookups() {
    let doc = generate_document(0.002);
    let mut hits = Vec::new();
    for system in SystemId::EXTENDED {
        let store = build_store(system, &doc.xml).unwrap();
        let hit = store
            .lookup_id("person0")
            .unwrap_or_else(|| panic!("{system} must consult the shared id index"))
            .unwrap_or_else(|| panic!("{system} must find person0"));
        assert_eq!(store.tag_of(hit), Some("person"), "{system}");
        assert_eq!(
            store.attribute(hit, "id").as_deref(),
            Some("person0"),
            "{system}"
        );
        assert_eq!(
            store.lookup_id("no-such-id").unwrap(),
            None,
            "{system} must answer misses too"
        );
        hits.push(hit.0);
    }
    // All stores number pre-order, so the hit is literally the same node.
    assert!(hits.windows(2).all(|w| w[0] == w[1]), "hits: {hits:?}");
}

/// Index ≡ scan oracle: with every shared index warm, the optimized
/// plans (IndexScan postings, persistent IndexLookup/HashJoin build
/// sides, indexed aggregates) must stay byte-identical to the pure
/// nested-loop specification on all twenty queries × all seven backends.
#[test]
fn warm_indexes_preserve_all_twenty_queries_on_every_backend() {
    let doc = generate_document(0.002);
    for system in SystemId::EXTENDED {
        let store = build_store(system, &doc.xml).unwrap();
        let store = store.as_ref();
        store.indexes().build_all(store);
        for q in &ALL_QUERIES {
            let naive = compile_with_mode(q.text, store, PlanMode::Naive).unwrap();
            let expected = canonicalize(store, &execute(&naive, store).unwrap());
            let optimized = compile(q.text, store).unwrap();
            // Twice: the second execution runs entirely against warm
            // value indexes (zero builds), and must not drift.
            for round in 0..2 {
                let got = canonicalize(store, &execute(&optimized, store).unwrap());
                assert_eq!(
                    got, expected,
                    "Q{} diverged on {system} (round {round})",
                    q.number
                );
            }
        }
    }
}

/// Two service workers racing on a cold store share one index build —
/// the build happens exactly once (per structure), never per worker.
#[test]
fn concurrent_workers_share_one_index_build() {
    let doc = generate_document(0.002);
    let store: Arc<dyn XmlStore> = build_store(SystemId::G, &doc.xml).unwrap().into();
    assert_eq!(store.indexes().builds(), 0);
    let service = QueryService::start(Arc::clone(&store), 2);
    // Q1 on G plans a scan (no ID probe), Q6 counts through the element
    // index, Q8 builds a lookup-join value index: all shared structures
    // get exercised by both workers at once.
    let report = service.run_mix(&[1, 6, 8, 14], 16);
    drop(service);
    let element_builds = 1; // one element index
    let stats = store.indexes().stats();
    assert!(
        stats.builds >= element_builds,
        "something must have been built"
    );
    // Exactly-once: re-running the same mix adds zero builds, and a
    // duplicate build for any structure would show up as a higher count
    // than a single-threaded run of the same mix produces.
    let single: Arc<dyn XmlStore> = build_store(SystemId::G, &doc.xml).unwrap().into();
    let sequential = QueryService::start(Arc::clone(&single), 1);
    sequential.run_mix(&[1, 6, 8, 14], 16);
    drop(sequential);
    assert_eq!(
        stats.builds,
        single.indexes().builds(),
        "2-worker build count must equal the single-threaded count"
    );
    assert_eq!(report.index_builds, stats.builds, "all builds were in-run");
}

/// Acceptance criterion: repeated execution of Q8–Q12 through the
/// service performs **zero** index rebuilds after warmup, and the
/// planned output stays byte-identical to naive on all seven backends.
#[test]
fn q8_to_q12_rebuild_nothing_after_warmup() {
    let doc = generate_document(0.002);
    let mix = [8, 9, 10, 11, 12];
    for system in SystemId::EXTENDED {
        let store: Arc<dyn XmlStore> = build_store(system, &doc.xml).unwrap().into();
        let service = QueryService::start(Arc::clone(&store), 2);
        service.build_indexes();
        let warmup = service.run_mix(&mix, mix.len());
        let steady = service.run_mix(&mix, mix.len() * 4);
        assert_eq!(
            steady.index_builds, 0,
            "{system}: warm Q8–Q12 service must not rebuild (warmup built {})",
            warmup.index_builds
        );
        drop(service);
        for &q in &mix {
            let naive = compile_with_mode(query(q).text, store.as_ref(), PlanMode::Naive).unwrap();
            let optimized = compile(query(q).text, store.as_ref()).unwrap();
            assert_eq!(
                canonicalize(
                    store.as_ref(),
                    &execute(&optimized, store.as_ref()).unwrap()
                ),
                canonicalize(store.as_ref(), &execute(&naive, store.as_ref()).unwrap()),
                "{system} Q{q} warm output diverged from the specification"
            );
        }
    }
}

/// Satellite: the cost gate. Sparse postings plan an IndexScan; dense
/// postings (most of the store matches) fall back to the streamed axis
/// scan, whose sequential locality wins.
#[test]
fn planner_gates_index_scans_on_posting_density() {
    // Sparse: two <needle> among hundreds of <hay>.
    let sparse_xml = format!(
        "<site>{}<needle/><needle/></site>",
        "<hay><straw/></hay>".repeat(100)
    );
    let sparse = NaiveStore::load(&sparse_xml).unwrap();
    let plan = compile("/site//needle", &sparse).unwrap().explain();
    assert!(
        plan.contains("->idx"),
        "sparse postings must plan an IndexScan:\n{plan}"
    );

    // Dense: <hay> is most of the document — streamed scan wins.
    let dense = NaiveStore::load(&format!("<site>{}</site>", "<hay/>".repeat(100))).unwrap();
    let plan = compile("/site//hay", &dense).unwrap().explain();
    assert!(
        !plan.contains("->idx"),
        "dense postings must fall back to the streamed scan:\n{plan}"
    );

    // The gate is per step: both can appear in one query.
    let plan = compile("count(/site//needle) + count(/site//hay)", &sparse)
        .unwrap()
        .explain();
    assert!(plan.contains("count(//needle)"));

    // Backends whose native descendant access is already extent-based
    // never plan IndexScans (their architecture is the index).
    let doc = generate_document(0.002);
    for system in [SystemId::D, SystemId::E] {
        let store = build_store(system, &doc.xml).unwrap();
        let plan = compile(query(14).text, store.as_ref()).unwrap().explain();
        assert!(
            !plan.contains("->idx"),
            "{system} has native extents; no IndexScan expected:\n{plan}"
        );
    }
}

/// Satellite: `size_bytes` includes index memory, and the index bytes are
/// separately reportable for the Table 1 column.
#[test]
fn size_accounting_includes_index_memory() {
    let doc = generate_document(0.002);
    for system in SystemId::ALL {
        let store = build_store(system, &doc.xml).unwrap();
        let store = store.as_ref();
        let before = store.size_bytes();
        assert_eq!(store.index_size_bytes(), 0, "{system}: nothing built yet");
        store.indexes().build_all(store);
        let index_bytes = store.index_size_bytes();
        assert!(index_bytes > 0, "{system}: built indexes have a size");
        assert_eq!(
            store.size_bytes(),
            before + index_bytes,
            "{system}: size_bytes must include index memory"
        );
    }
}
