//! Optimizer oracle: every FLWOR rewrite the evaluator applies (hash
//! join, decorrelated lookup, predicate pushdown) must be *semantically
//! invisible* — the optimized and the pure nested-loop evaluation of all
//! twenty queries must produce byte-identical canonical output.
//!
//! This is the reproduction-side analogue of the paper's §1 concern that
//! query-processor verification is hard: the naive evaluator is the
//! executable specification; the optimized one is the implementation under
//! test.

use xmark::prelude::*;
use xmark::query::{canonicalize, parse_query, Evaluator};

fn run_with(store: &dyn XmlStore, text: &str, optimize: bool) -> String {
    let query = parse_query(text).expect("query parses");
    let evaluator = Evaluator::with_optimizations(store, &query, optimize);
    let result = evaluator.run(&query).expect("query runs");
    canonicalize(store, &result)
}

#[test]
fn rewrites_preserve_all_twenty_queries() {
    let doc = generate_document(0.002);
    let store = build_store(SystemId::D, &doc.xml).unwrap();
    for q in &ALL_QUERIES {
        let optimized = run_with(store.as_ref(), q.text, true);
        let naive = run_with(store.as_ref(), q.text, false);
        assert_eq!(
            optimized, naive,
            "Q{}: the optimizer changed the result",
            q.number
        );
    }
}

#[test]
fn rewrites_preserve_results_on_other_seeds() {
    for seed in [3u64, 1999] {
        let xml = xmark::gen::generate_string(&xmark::gen::GeneratorConfig {
            factor: 0.001,
            seed,
        });
        let store = build_store(SystemId::E, &xml).unwrap();
        // The rewrite-sensitive queries: joins (8, 9, 10), pushdown (11,
        // 12), quantifiers (4) and positional access (2, 3).
        for q in [2, 3, 4, 8, 9, 10, 11, 12] {
            let optimized = run_with(store.as_ref(), query(q).text, true);
            let naive = run_with(store.as_ref(), query(q).text, false);
            assert_eq!(optimized, naive, "Q{q} differs at seed {seed}");
        }
    }
}

#[test]
fn join_rewrite_handles_duplicate_keys() {
    // Hand-built document where join keys repeat on both sides: the
    // nested loop emits one tuple per matching *pair*, and so must the
    // hash join.
    let xml = r#"<site><l><x k="a"/><x k="a"/><x k="b"/></l><r><y k="a"/><y k="a"/><y k="c"/></r></site>"#;
    let store = build_store(SystemId::G, xml).unwrap();
    let q = r#"for $l in document("d")/site/l/x, $r in document("d")/site/r/y
               where $l/@k = $r/@k
               return <pair l="{$l/@k}" r="{$r/@k}"/>"#;
    let optimized = run_with(store.as_ref(), q, true);
    let naive = run_with(store.as_ref(), q, false);
    assert_eq!(optimized, naive);
    // 2 left "a" × 2 right "a" = 4 pairs.
    assert_eq!(optimized.lines().count(), 4);
}

#[test]
fn pushdown_respects_clause_scoping() {
    // A where-conjunct that only involves the *outer* variable must not
    // change results when evaluated before the inner binding.
    let xml = r#"<site><p v="1"/><p v="2"/><q w="9"/></site>"#;
    let store = build_store(SystemId::G, xml).unwrap();
    let q = r#"for $p in document("d")/site/p
               let $a := for $q in document("d")/site/q return $q
               where $p/@v = "2"
               return <hit n="{count($a)}"/>"#;
    let optimized = run_with(store.as_ref(), q, true);
    let naive = run_with(store.as_ref(), q, false);
    assert_eq!(optimized, naive);
    assert_eq!(optimized, r#"<hit n="1"/>"#);
}

#[test]
fn decorrelation_handles_empty_probe_keys() {
    // Outer items without the probed attribute must simply match nothing.
    let xml = r#"<site><p id="p1"/><p/><t ref="p1"/><t ref="p2"/></site>"#;
    let store = build_store(SystemId::G, xml).unwrap();
    let q = r#"for $p in document("d")/site/p
               let $a := for $t in document("d")/site/t
                         where $t/@ref = $p/@id
                         return $t
               return <n c="{count($a)}"/>"#;
    let optimized = run_with(store.as_ref(), q, true);
    let naive = run_with(store.as_ref(), q, false);
    assert_eq!(optimized, naive);
    assert_eq!(optimized, "<n c=\"1\"/>\n<n c=\"0\"/>");
}
