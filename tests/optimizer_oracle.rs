//! Optimizer oracle: every decision the planner makes (hash join,
//! decorrelated index lookup, predicate pushdown, ID/positional/inlined
//! access paths, summary aggregates) must be *semantically invisible* —
//! the optimized and the pure nested-loop execution of all twenty queries
//! must produce byte-identical canonical output on **every** backend A–G.
//!
//! This is the reproduction-side analogue of the paper's §1 concern that
//! query-processor verification is hard: the naive plan
//! ([`PlanMode::Naive`] — generic cursors, no joins, no pushdown) is the
//! executable specification; the optimized plan is the implementation
//! under test.

use xmark::prelude::*;
use xmark::query::{canonicalize, compile_with_mode};

fn run_with(store: &dyn XmlStore, text: &str, mode: PlanMode) -> String {
    let compiled = compile_with_mode(text, store, mode).expect("query compiles");
    let result = execute(&compiled, store).expect("query runs");
    canonicalize(store, &result)
}

fn assert_planned_matches_naive(store: &dyn XmlStore, number: usize, text: &str) {
    let optimized = run_with(store, text, PlanMode::Optimized);
    let naive = run_with(store, text, PlanMode::Naive);
    assert_eq!(
        optimized,
        naive,
        "Q{number}: the planner changed the result on {}",
        store.system()
    );
}

#[test]
fn planned_plans_preserve_all_twenty_queries_on_every_backend() {
    let doc = generate_document(0.002);
    for system in SystemId::ALL {
        let store = build_store(system, &doc.xml).unwrap();
        for q in &ALL_QUERIES {
            assert_planned_matches_naive(store.as_ref(), q.number, q.text);
        }
    }
}

#[test]
fn planned_plans_preserve_results_on_other_seeds() {
    for seed in [3u64, 1999] {
        let xml = xmark::gen::generate_string(&xmark::gen::GeneratorConfig {
            factor: 0.001,
            seed,
        });
        for system in SystemId::ALL {
            let store = build_store(system, &xml).unwrap();
            // The plan-sensitive queries: joins (8, 9, 10), pushdown (11,
            // 12), quantifiers (4), positional access (2, 3) and summary
            // counts (6, 7).
            for q in [2, 3, 4, 6, 7, 8, 9, 10, 11, 12] {
                assert_planned_matches_naive(store.as_ref(), q, query(q).text);
            }
        }
    }
}

#[test]
fn join_plan_handles_duplicate_keys() {
    // Hand-built document where join keys repeat on both sides: the
    // nested loop emits one tuple per matching *pair*, and so must the
    // hash join.
    let xml = r#"<site><l><x k="a"/><x k="a"/><x k="b"/></l><r><y k="a"/><y k="a"/><y k="c"/></r></site>"#;
    let q = r#"for $l in document("d")/site/l/x, $r in document("d")/site/r/y
               where $l/@k = $r/@k
               return <pair l="{$l/@k}" r="{$r/@k}"/>"#;
    for system in SystemId::ALL {
        let store = build_store(system, xml).unwrap();
        let optimized = run_with(store.as_ref(), q, PlanMode::Optimized);
        let naive = run_with(store.as_ref(), q, PlanMode::Naive);
        assert_eq!(optimized, naive, "{system}");
        // 2 left "a" × 2 right "a" = 4 pairs.
        assert_eq!(optimized.lines().count(), 4, "{system}");
    }
}

#[test]
fn pushdown_respects_clause_scoping() {
    // A where-conjunct that only involves the *outer* variable must not
    // change results when evaluated before the inner binding.
    let xml = r#"<site><p v="1"/><p v="2"/><q w="9"/></site>"#;
    let q = r#"for $p in document("d")/site/p
               let $a := for $q in document("d")/site/q return $q
               where $p/@v = "2"
               return <hit n="{count($a)}"/>"#;
    for system in SystemId::ALL {
        let store = build_store(system, xml).unwrap();
        let optimized = run_with(store.as_ref(), q, PlanMode::Optimized);
        let naive = run_with(store.as_ref(), q, PlanMode::Naive);
        assert_eq!(optimized, naive, "{system}");
        assert_eq!(optimized, r#"<hit n="1"/>"#, "{system}");
    }
}

#[test]
fn decorrelation_handles_empty_probe_keys() {
    // Outer items without the probed attribute must simply match nothing.
    let xml = r#"<site><p id="p1"/><p/><t ref="p1"/><t ref="p2"/></site>"#;
    let q = r#"for $p in document("d")/site/p
               let $a := for $t in document("d")/site/t
                         where $t/@ref = $p/@id
                         return $t
               return <n c="{count($a)}"/>"#;
    for system in SystemId::ALL {
        let store = build_store(system, xml).unwrap();
        let optimized = run_with(store.as_ref(), q, PlanMode::Optimized);
        let naive = run_with(store.as_ref(), q, PlanMode::Naive);
        assert_eq!(optimized, naive, "{system}");
        assert_eq!(optimized, "<n c=\"1\"/>\n<n c=\"0\"/>", "{system}");
    }
}

#[test]
fn join_keys_follow_general_comparison_semantics() {
    // The canonical join key must agree with the general comparison the
    // nested-loop specification evaluates: whitespace-padded strings
    // join their trimmed value, "-0" joins "0", and NaN joins *nothing*
    // (NaN = NaN is false), even though "NaN" parses as a float.
    let xml = concat!(
        r#"<site><l><x k="  a  "/><x k="-0"/><x k="NaN"/><x k="40.0"/></l>"#,
        r#"<r><y k="a"/><y k="0"/><y k="NaN"/><y k="40"/></r></site>"#
    );
    let q = r#"for $l in document("d")/site/l/x, $r in document("d")/site/r/y
               where $l/@k = $r/@k
               return <pair l="{$l/@k}" r="{$r/@k}"/>"#;
    for system in SystemId::ALL {
        let store = build_store(system, xml).unwrap();
        let optimized = run_with(store.as_ref(), q, PlanMode::Optimized);
        let naive = run_with(store.as_ref(), q, PlanMode::Naive);
        assert_eq!(optimized, naive, "{system}");
        // "  a  "~"a", "-0"~"0", "40.0"~"40" join; the NaN pair does not.
        assert_eq!(optimized.lines().count(), 3, "{system}:\n{optimized}");
        assert!(
            !optimized.contains("NaN"),
            "{system}: NaN must join nothing"
        );
    }
}

#[test]
fn hoisted_probe_filters_match_per_pair_evaluation() {
    // A hash join with a second, correlated equality (Q9's shape): the
    // hoisted probe-side filter must keep exactly the pairs the naive
    // per-pair evaluation keeps.
    let xml = concat!(
        r#"<site><p id="p1"/><p id="p2"/>"#,
        r#"<t item="i1" owner="p1"/><t item="i1" owner="p2"/><t item="i9" owner="p1"/>"#,
        r#"<e id="i1"/><e id="i2"/></site>"#
    );
    let q = r#"for $p in document("d")/site/p
               let $a := for $t in document("d")/site/t, $e in document("d")/site/e
                         where $t/@item = $e/@id and $t/@owner = $p/@id
                         return $e
               return <n c="{count($a)}"/>"#;
    for system in SystemId::ALL {
        let store = build_store(system, xml).unwrap();
        let optimized = run_with(store.as_ref(), q, PlanMode::Optimized);
        let naive = run_with(store.as_ref(), q, PlanMode::Naive);
        assert_eq!(optimized, naive, "{system}");
        assert_eq!(optimized, "<n c=\"1\"/>\n<n c=\"1\"/>", "{system}");
    }
}
