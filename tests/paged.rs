//! Backend H acceptance: the disk-resident paged store must be a drop-in
//! eighth backend.
//!
//! * **Oracle under memory pressure** — all twenty queries byte-identical
//!   to System A while the buffer pool holds at most a quarter of the
//!   page file, so every query runs through real evictions.
//! * **Cold open** — a persisted page file re-opens without the XML and
//!   answers queries identically.
//! * **Corruption** — a flipped byte anywhere in a data page is caught by
//!   the page checksum at pin time; a truncated WAL (torn bulkload) is
//!   rejected at open.

use std::path::PathBuf;

use xmark::prelude::*;
use xmark::store::paged::scratch_dir;

fn page_file(name: &str) -> PathBuf {
    scratch_dir().join(format!("it-{}-{name}.pages", std::process::id()))
}

fn remove(path: &PathBuf) {
    let _ = std::fs::remove_file(path.with_extension("wal"));
    let _ = std::fs::remove_file(path);
}

/// The headline acceptance criterion: Q1–Q20 on H are byte-identical to
/// System A on a document bigger than the buffer pool. The pool is capped
/// at a quarter of the file's pages, so the store cannot keep the
/// database resident — the identical output is produced through pin /
/// evict / re-read traffic, and the counters prove evictions happened.
#[test]
fn all_twenty_queries_match_system_a_with_a_quarter_size_pool() {
    let doc = generate_document(0.002);
    let reference = build_store(SystemId::A, &doc.xml).unwrap();

    let path = page_file("oracle");
    {
        let parsed = xmark::xml::parse_document(&doc.xml).unwrap();
        PagedStore::create_at(&path, &parsed, DEFAULT_POOL_PAGES).unwrap();
    }
    let h = PagedStore::open(&path, 2).unwrap(); // resized below
    let file_pages = h.num_pages() as usize;
    drop(h);
    let pool = (file_pages / 4).max(2);
    assert!(
        pool * 4 <= file_pages,
        "document too small to stress the pool ({file_pages} pages)"
    );
    let h = PagedStore::open(&path, pool).unwrap();

    for q in &ALL_QUERIES {
        assert_eq!(
            canonical_output(&h, q.number),
            canonical_output(reference.as_ref(), q.number),
            "Q{} differs between H (pool {pool}/{file_pages} pages) and A",
            q.number
        );
    }
    let stats = h.pool_stats();
    assert!(
        stats.evictions > 0,
        "a {pool}-frame pool over {file_pages} pages must evict (stats: {stats:?})"
    );
    assert!(stats.hits > 0 && stats.misses > 0);

    drop(h);
    remove(&path);
}

/// Persist, drop every in-memory structure, and re-open cold: the store
/// must answer queries from the page file alone — no XML re-parse — and
/// stay byte-identical to the warm instance.
#[test]
fn cold_reopen_answers_queries_without_the_xml() {
    let doc = generate_document(0.001);
    let path = page_file("reopen");
    let warm_outputs: Vec<String> = {
        let parsed = xmark::xml::parse_document(&doc.xml).unwrap();
        let warm = PagedStore::create_at(&path, &parsed, 32).unwrap();
        [1, 6, 8, 13, 17, 19]
            .iter()
            .map(|&q| canonical_output(&warm, q))
            .collect()
    };
    // The XML string is dead from here on: only the page file remains.
    drop(doc);

    let cold = PagedStore::open(&path, 32).unwrap();
    for (i, &q) in [1, 6, 8, 13, 17, 19].iter().enumerate() {
        assert_eq!(
            canonical_output(&cold, q),
            warm_outputs[i],
            "Q{q} drifted across a cold re-open"
        );
    }
    assert!(cold.pool_stats().pages_read > 0, "cold open reads pages");

    drop(cold);
    remove(&path);
}

/// A flipped byte in a data page fails the checksum the moment the page
/// is pinned — queries cannot silently read corrupted intervals.
#[test]
fn corrupted_page_file_is_detected_by_checksums() {
    let doc = generate_document(0.001);
    let path = page_file("corrupt");
    {
        let parsed = xmark::xml::parse_document(&doc.xml).unwrap();
        PagedStore::create_at(&path, &parsed, 32).unwrap();
    }

    // Flip one byte in the middle of a node page (past the header page,
    // inside the record area, clear of the page header).
    let mut bytes = std::fs::read(&path).unwrap();
    let victim = 4096 * 2 + 100;
    bytes[victim] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let store = PagedStore::open(&path, 32).unwrap();
    let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for q in 1..=20 {
            canonical_output(&store, q);
        }
    }));
    assert!(
        poisoned.is_err(),
        "checksum verification must refuse the corrupted page"
    );

    remove(&path);
}

/// A WAL with its tail missing means the bulkload never finished; the
/// open must refuse the file rather than serve a half-written database.
#[test]
fn truncated_wal_is_rejected_as_a_torn_bulkload() {
    let doc = generate_document(0.001);
    let path = page_file("torn");
    {
        let parsed = xmark::xml::parse_document(&doc.xml).unwrap();
        PagedStore::create_at(&path, &parsed, 32).unwrap();
    }
    let wal = path.with_extension("wal");
    let bytes = std::fs::read(&wal).unwrap();
    // Keep only the first half: the closing EndBulkLoad is gone and the
    // cut almost certainly lands mid-record.
    std::fs::write(&wal, &bytes[..bytes.len() / 2]).unwrap();

    let err = PagedStore::open(&path, 32).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");

    remove(&path);
}
