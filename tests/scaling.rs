//! Scaling behaviour of the generator (paper §4.5 and Fig. 3).
//!
//! The generator must be: accurately scalable (linear in the factor),
//! deterministic, reference-consistent at every scale, and constant-memory
//! (checked structurally here: the streaming writer holds only the open
//! tag stack; the memory claim is *measured* by the `fig3_scaling` bench).

use xmark::gen::{generate_split, generate_string, Cardinalities, Generator, GeneratorConfig};
use xmark::prelude::*;

#[test]
fn document_size_is_linear_in_the_factor() {
    let sizes: Vec<usize> = [0.001, 0.002, 0.004, 0.008]
        .iter()
        .map(|&f| generate_string(&GeneratorConfig::at_factor(f)).len())
        .collect();
    for w in sizes.windows(2) {
        let ratio = w[1] as f64 / w[0] as f64;
        assert!(
            (1.6..2.5).contains(&ratio),
            "doubling the factor must roughly double the size, got ratio {ratio}"
        );
    }
}

#[test]
fn factor_001_hits_the_figure3_calibration() {
    // Fig. 3 row "tiny": factor 0.1 → 10 MB, i.e. factor 0.01 → ~1 MB.
    let bytes = generate_string(&GeneratorConfig::at_factor(0.01)).len();
    assert!(
        (800_000..1_400_000).contains(&bytes),
        "factor 0.01 gave {bytes} bytes"
    );
}

#[test]
fn all_references_resolve_at_multiple_scales() {
    for &factor in &[0.0005, 0.002] {
        let xml = generate_string(&GeneratorConfig::at_factor(factor));
        let doc = xmark::xml::parse_document(&xml).expect("well-formed");
        let root = doc.root_element();

        // Collect declared ids.
        let mut ids = std::collections::HashSet::new();
        for n in doc.descendants(root) {
            if doc.is_element(n) {
                if let Some(id) = doc.attribute(n, "id") {
                    assert!(ids.insert(id.to_string()), "duplicate id {id}");
                }
            }
        }
        // Every IDREF attribute must point at a declared id (§4.5: "we
        // have to abide by the integrity constraint that every reference
        // points to a valid identifier").
        let mut checked = 0usize;
        for n in doc.descendants(root) {
            if !doc.is_element(n) {
                continue;
            }
            for (attr, target) in [
                ("person", "person"),
                ("item", "item"),
                ("category", "category"),
                ("open_auction", "open_auction"),
                ("from", "category"),
                ("to", "category"),
            ] {
                if let Some(value) = doc.attribute(n, attr) {
                    assert!(
                        value.starts_with(target),
                        "{attr}={value} should reference a {target}"
                    );
                    assert!(ids.contains(value), "dangling reference {attr}={value}");
                    checked += 1;
                }
            }
        }
        assert!(
            checked > 50,
            "reference check must actually cover references"
        );
    }
}

#[test]
fn open_plus_closed_equals_items_in_the_document() {
    let xml = generate_string(&GeneratorConfig::at_factor(0.002));
    let store = build_store(SystemId::D, &xml).unwrap();
    let count = |q: &str| -> usize {
        let out = run_query(q, store.as_ref()).unwrap();
        xmark::query::atomize(store.as_ref(), &out[0])
            .parse::<f64>()
            .unwrap() as usize
    };
    let items = count(r#"count(document("x")/site/regions//item)"#);
    let open = count(r#"count(document("x")/site/open_auctions/open_auction)"#);
    let closed = count(r#"count(document("x")/site/closed_auctions/closed_auction)"#);
    assert_eq!(items, open + closed, "paper §4.5 integrity constraint");
}

#[test]
fn cardinality_model_matches_generated_document() {
    let factor = 0.003;
    let cards = Cardinalities::for_factor(factor);
    let xml = generate_string(&GeneratorConfig::at_factor(factor));
    let store = build_store(SystemId::E, &xml).unwrap();
    let count = |tag: &str| store.count_descendants_named(store.root(), tag);
    assert_eq!(count("item"), cards.items);
    assert_eq!(count("person"), cards.persons);
    assert_eq!(count("open_auction"), cards.open_auctions);
    assert_eq!(count("closed_auction"), cards.closed_auctions);
    assert_eq!(count("category"), cards.categories);
    assert_eq!(count("edge"), cards.catgraph_edges);
}

#[test]
fn split_mode_covers_all_entities() {
    let config = GeneratorConfig::at_factor(0.001);
    let cards = Generator::new(config.clone()).cardinalities().clone();
    let files = generate_split(&config, 10);
    let mut persons = 0usize;
    let mut items = 0usize;
    for f in &files {
        let doc = xmark::xml::parse_document(&f.content).unwrap();
        let root = doc.root_element();
        for n in doc.descendants(root) {
            if doc.is_element(n) {
                match doc.tag_name(n) {
                    "person" => persons += 1,
                    "item" => items += 1,
                    _ => {}
                }
            }
        }
    }
    assert_eq!(persons, cards.persons);
    assert_eq!(items, cards.items);
}

#[test]
fn different_seeds_differ_but_share_cardinalities() {
    let a = generate_string(&GeneratorConfig {
        factor: 0.001,
        seed: 0,
    });
    let b = generate_string(&GeneratorConfig {
        factor: 0.001,
        seed: 42,
    });
    assert_ne!(a, b);
    for xml in [&a, &b] {
        let store = build_store(SystemId::E, xml).unwrap();
        assert_eq!(
            store.count_descendants_named(store.root(), "person"),
            Cardinalities::for_factor(0.001).persons
        );
    }
}

#[test]
fn generation_into_sink_reports_accurate_bytes() {
    let config = GeneratorConfig::at_factor(0.001);
    let generator = Generator::new(config.clone());
    let mut counted = 0u64;
    struct Counting<'a>(&'a mut u64);
    impl std::io::Write for Counting<'_> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            *self.0 += buf.len() as u64;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let stats = generator.write(Counting(&mut counted)).unwrap();
    assert_eq!(stats.bytes, counted);
    assert_eq!(counted as usize, generate_string(&config).len());
}
