//! Scatter-gather oracle: sharded deployments are invisible to queries.
//!
//! A [`ShardedStore`] partitions one logical XMark document across N
//! entity shards plus a global head shard, and the query layer's scatter
//! executor fans shard-parallel plans out per shard and reassembles the
//! result (ordered merge on document-order keys for path scans, run
//! concatenation for FLWOR iteration, partial-aggregate combine for
//! counts, fall-through for gather-required plans). This suite is the
//! correctness contract for all of it: **every** benchmark query must
//! produce byte-identical canonical output on the sharded union and on
//! the monolithic store it partitions — for 2, 4 and 8 shards, on an
//! in-memory backend (A) and on the disk-resident backend (H, one page
//! file per shard, opened cold).

use xmark::prelude::*;

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];
const FACTOR: f64 = 0.001;

/// Monolithic reference outputs for every query, computed once.
fn reference_outputs(session: &Session) -> Vec<String> {
    let mono = session.load(SystemId::A);
    (1..=20)
        .map(|q| canonical_output(mono.store.as_ref(), q))
        .collect()
}

fn assert_sharded_matches(store: &dyn XmlStore, reference: &[String], label: &str) {
    for (i, want) in reference.iter().enumerate() {
        let q = i + 1;
        let got = canonical_output(store, q);
        assert_eq!(
            &got, want,
            "Q{q} diverged on {label}: the scatter executor reassembled a \
             different result than the monolithic run"
        );
    }
}

#[test]
fn all_queries_agree_sharded_vs_monolithic_in_memory() {
    let session = Benchmark::at_factor(FACTOR).generate();
    let reference = reference_outputs(&session);
    for shards in SHARD_COUNTS {
        let sharded = session.load_sharded(SystemId::A, shards);
        assert_eq!(
            sharded.store.shard_part_count(),
            shards + 1,
            "global head + entity shards"
        );
        assert_sharded_matches(
            sharded.store.as_ref(),
            &reference,
            &format!("System A x{shards} shards"),
        );
    }
}

#[test]
fn all_queries_agree_sharded_vs_monolithic_paged_cold() {
    let session = Benchmark::at_factor(FACTOR).generate();
    let reference = reference_outputs(&session);
    for shards in SHARD_COUNTS {
        // Each shard bulkloads into its own page file and re-opens cold:
        // the union starts with every per-shard buffer pool empty.
        let sharded = session.load_sharded_paged(shards, Some(32));
        assert_eq!(sharded.system, SystemId::H);
        assert_sharded_matches(
            sharded.store.as_ref(),
            &reference,
            &format!("System H x{shards} cold shards"),
        );
        // The shards really are paged: pool counters saw the traffic.
        let stats = sharded
            .store
            .paged_stats()
            .expect("sharded H union merges shard pool stats");
        assert!(stats.pages_read > 0, "cold shards must read pages");
    }
}

#[test]
fn every_scatter_mode_appears_in_the_benchmark_mix() {
    // The oracle above proves outputs agree; this pins *why* it is a
    // scatter test at all — the twenty queries exercise every shard
    // execution mode, so a classification regression cannot silently
    // turn the whole suite into gather fall-throughs.
    let session = Benchmark::at_factor(FACTOR).generate();
    let sharded = session.load_sharded(SystemId::A, 2);
    let store = sharded.store.as_ref();
    let mut modes = std::collections::BTreeMap::new();
    for q in 1..=20 {
        let compiled = compile(query(q).text, store).expect("benchmark query compiles");
        *modes.entry(compiled.plan.shard).or_insert(0usize) += 1;
    }
    assert!(
        modes.keys().any(|m| m.is_parallel()),
        "no benchmark query scatters at all: {modes:?}"
    );
    assert!(
        modes.contains_key(&ShardMode::ParallelSum),
        "no partial-aggregate query in the mix: {modes:?}"
    );
    assert!(
        modes.contains_key(&ShardMode::Gather),
        "no gather-required query in the mix: {modes:?}"
    );
}
