//! Streaming oracle: the pull-based result API must be *observationally
//! identical* to the materializing one, and genuinely lazy.
//!
//! Two families of assertions:
//!
//! * **Byte identity** — for all twenty queries on every backend A–H,
//!   draining a [`ResultStream`] yields exactly the sequence `execute`
//!   returns, and `write_to` produces exactly the bytes
//!   `serialize_sequence` produces from the materialized result.
//! * **Early termination** — the stream's pull counter proves that
//!   `exists()` / `take(n)` stop the operator cursors early: they pull
//!   strictly fewer items than a full drain on real XMark queries, and an
//!   existential predicate (`[bidder]`-shaped) stops at its first witness
//!   instead of draining the axis.

use xmark::prelude::*;
use xmark::query::Compiled;
use xmark::store::NaiveStore;

fn compiled(store: &dyn XmlStore, text: &str) -> Compiled {
    compile(text, store).expect("query compiles")
}

#[test]
fn stream_matches_execute_on_all_twenty_queries_and_backends() {
    let doc = generate_document(0.002);
    for system in SystemId::EXTENDED {
        let store = build_store(system, &doc.xml).unwrap();
        let store = store.as_ref();
        for q in &ALL_QUERIES {
            let c = compiled(store, q.text);
            let materialized = execute(&c, store).expect("query runs");
            let expected = serialize_sequence(store, &materialized);

            // Draining the stream yields the same item sequence …
            let streamed = c.stream(store).collect_seq().expect("stream runs");
            assert_eq!(
                serialize_sequence(store, &streamed),
                expected,
                "Q{} streamed items diverge on {system}",
                q.number
            );

            // … and sink serialization produces the same bytes without
            // ever materializing the sequence.
            let mut sunk = String::new();
            let stats = c.write_to(store, &mut sunk).expect("write_to runs");
            assert_eq!(
                sunk, expected,
                "Q{} write_to bytes diverge on {system}",
                q.number
            );
            assert_eq!(stats.items, materialized.len());
            assert_eq!(stats.bytes, expected.len() as u64);
        }
    }
}

#[test]
fn write_to_reaches_io_sinks() {
    // The fmt::Write-generic path serves io::Write targets through IoSink
    // — same bytes, counted, no intermediate String.
    let doc = generate_document(0.001);
    let loaded = load_system(SystemId::E, &doc.xml);
    let store = loaded.store.as_ref();
    let c = compiled(store, query(13).text);
    let expected = serialize_sequence(store, &execute(&c, store).unwrap());

    let mut sink = IoSink::new(Vec::<u8>::new());
    let stats = c.write_to(store, &mut sink).expect("streams to io::Write");
    assert!(sink.take_error().is_none());
    assert_eq!(stats.bytes, sink.bytes());
    assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), expected);
}

/// Drain a stream completely, returning (items, pulls).
fn drain_counting(mut s: ResultStream<'_>) -> (usize, u64) {
    let mut items = 0;
    while let Some(r) = s.next_item() {
        r.expect("query runs");
        items += 1;
    }
    (items, s.pulls())
}

/// Pull the first `n` items only, returning the pull count.
fn pulls_after_taking(mut s: ResultStream<'_>, n: usize) -> u64 {
    for _ in 0..n {
        s.next_item()
            .expect("result is non-empty")
            .expect("query runs");
    }
    s.pulls()
}

#[test]
fn take_and_exists_pull_strictly_fewer_items_than_full_evaluation() {
    let doc = generate_document(0.002);
    let loaded = load_system(SystemId::D, &doc.xml);
    let store = loaded.store.as_ref();

    // Q13 (serialization-heavy projection over australia's items), Q14
    // (descendant scan with a contains-filter) and Q15 (a deep child
    // chain ending in a value-tail `keyword/text()`) all have streaming
    // pipelines and multi-item results. Q15 pins that the child-value
    // tail stays pipelining: taking one item must not drain the chain.
    for number in [13, 14, 15] {
        let c = compiled(store, query(number).text);
        let (items, full_pulls) = drain_counting(c.stream(store));
        assert!(items > 1, "Q{number} must have a multi-item result");

        let first_pulls = pulls_after_taking(c.stream(store), 1);
        assert!(
            first_pulls < full_pulls,
            "Q{number}: pulling one item cost {first_pulls} pulls, \
             no fewer than the full drain's {full_pulls}"
        );

        // The public fast paths agree with the materialized prefix.
        let all = execute(&c, store).unwrap();
        assert_eq!(
            serialize_sequence(store, &c.stream(store).take(2).unwrap()),
            serialize_sequence(store, &all[..2.min(all.len())]),
            "Q{number}: take(2) diverges from the materialized prefix"
        );
        assert!(c.stream(store).exists().unwrap());
        assert_eq!(c.stream(store).count().unwrap(), all.len());
    }
}

#[test]
fn existential_predicate_stops_at_the_first_witness() {
    // Every <a> holds many <b> children; `[b]` only asks whether one
    // exists. The pull counter proves the predicate cursor stops at its
    // first witness instead of draining the child axis.
    const FANOUT: usize = 40;
    let body: String = (0..3)
        .map(|_| format!("<a>{}</a>", "<b/>".repeat(FANOUT)))
        .collect();
    let store = NaiveStore::load(&format!("<site>{body}</site>")).unwrap();
    let c = compiled(&store, r#"document("auction.xml")/site/a[b]"#);

    let (items, pulls) = drain_counting(c.stream(&store));
    assert_eq!(items, 3, "all three <a> elements qualify");
    assert!(
        (pulls as usize) < 3 * FANOUT,
        "predicate evaluation pulled {pulls} items — it drained the \
         b-axis instead of stopping at the first witness"
    );
}

#[test]
fn exists_function_pulls_at_most_one_item() {
    // Same probe through the XQuery surface: exists(...) and the
    // where-clause EBV both go through the short-circuiting cursor.
    let doc = generate_document(0.002);
    let loaded = load_system(SystemId::G, &doc.xml);
    let store = loaded.store.as_ref();

    let c = compiled(store, r#"exists(document("auction.xml")/site//item)"#);
    let (_, pulls) = drain_counting(c.stream(store));

    let scan = compiled(store, r#"document("auction.xml")/site//item"#);
    let (items, scan_pulls) = drain_counting(scan.stream(store));
    assert!(items > 1);
    assert!(
        pulls < scan_pulls,
        "exists() pulled {pulls} items, no fewer than the {scan_pulls} \
         of a full //item scan"
    );
}

#[test]
fn batched_drain_is_byte_identical_at_every_capacity() {
    // The vectorized core under the item facade: at every batch
    // capacity — degenerate (1), misaligned (3), the join run (64) and
    // the widest supported (256) — the batched drains must reproduce
    // `execute`'s bytes exactly, and the pull counter must report the
    // same items-delivered total as an item-at-a-time drain. A full
    // drain has no early-termination boundary, so the totals are equal,
    // not merely within one batch.
    let doc = generate_document(0.002);
    for system in SystemId::EXTENDED {
        let store = build_store(system, &doc.xml).unwrap();
        let store = store.as_ref();
        for q in &ALL_QUERIES {
            let c = compiled(store, q.text);
            let materialized = execute(&c, store).expect("query runs");
            let expected = serialize_sequence(store, &materialized);
            let (_, item_pulls) = drain_counting(c.stream(store));

            for cap in [1usize, 3, 64, 256] {
                let mut s = c.stream(store).with_batch_size(cap);
                let streamed = s.collect_seq().expect("stream runs");
                assert_eq!(
                    serialize_sequence(store, &streamed),
                    expected,
                    "Q{} batched items diverge on {system} at capacity {cap}",
                    q.number
                );
                assert_eq!(
                    s.pulls(),
                    item_pulls,
                    "Q{} batched drain pull total diverges on {system} at \
                     capacity {cap}",
                    q.number
                );
            }

            // Sink serialization through the batched core, at the two
            // extreme capacities.
            for cap in [3usize, 256] {
                let mut sunk = String::new();
                let stats = c
                    .stream(store)
                    .with_batch_size(cap)
                    .write_to(&mut sunk)
                    .expect("write_to runs");
                assert_eq!(
                    sunk, expected,
                    "Q{} batched write_to bytes diverge on {system} at \
                     capacity {cap}",
                    q.number
                );
                assert_eq!(stats.items, materialized.len());
            }
        }
    }
}

#[test]
fn half_consumed_stream_resumes_batched_from_the_item_offset() {
    // Granularity switch mid-stream: pull a prefix through the item
    // facade — leaving memoized inner cursors half-way through their
    // shared sequences — then drain the rest batched. The resumed batch
    // drain must continue from the facade's offset, not replay the memo
    // from its start. The FLWOR body replays an absolute memoized path
    // per binding, so every prefix length that is misaligned with the
    // batch capacity lands inside a replayed sequence.
    let doc = generate_document(0.002);
    let loaded = load_system(SystemId::D, &doc.xml);
    let store = loaded.store.as_ref();
    let c = compiled(
        store,
        r#"for $p in document("auction.xml")/site/people/person
           return document("auction.xml")/site/regions//item/name/text()"#,
    );
    let all = execute(&c, store).unwrap();
    assert!(
        all.len() > 8,
        "need a multi-item result to misalign against every capacity"
    );
    let expected = serialize_sequence(store, &all);

    for cap in [1usize, 3, 64, 256] {
        for k in [1usize, 2, all.len() / 2, all.len() - 1] {
            let mut s = c.stream(store).with_batch_size(cap);
            let mut items = Vec::with_capacity(all.len());
            for _ in 0..k {
                items.push(
                    s.next_item()
                        .expect("prefix item exists")
                        .expect("query runs"),
                );
            }
            items.extend(s.collect_seq().expect("stream resumes batched"));
            assert_eq!(
                serialize_sequence(store, &items),
                expected,
                "prefix of {k} items then a capacity-{cap} batched drain \
                 diverges from the materialized result"
            );
        }
    }
}

#[test]
fn batch_capacity_never_widens_a_take_boundary_by_more_than_one_batch() {
    // The early-termination bound, restated for configured capacities:
    // `take(n)` / `exists()` ride the item facade, so a stream carrying
    // any batch capacity may pull at most one batch beyond what the
    // item-at-a-time boundary pulls — and must still pull strictly
    // fewer items than a full drain.
    let doc = generate_document(0.002);
    let loaded = load_system(SystemId::D, &doc.xml);
    let store = loaded.store.as_ref();
    let c = compiled(store, query(13).text);
    let (items, full_pulls) = drain_counting(c.stream(store));
    assert!(items > 1);
    let boundary_pulls = pulls_after_taking(c.stream(store), 1);

    for cap in [1usize, 3, 64, 256] {
        let pulls = pulls_after_taking(c.stream(store).with_batch_size(cap), 1);
        assert!(
            pulls < full_pulls,
            "capacity-{cap} stream pulled {pulls} items for one item — \
             no fewer than the full drain's {full_pulls}"
        );
        assert!(
            pulls <= boundary_pulls + cap as u64,
            "capacity-{cap} stream pulled {pulls} items for one item — \
             more than one batch past the item-facade boundary \
             ({boundary_pulls})"
        );
    }
}

#[test]
fn session_stream_facade_short_circuits() {
    // The façade surface: Session::stream wires the same fast paths.
    let session = Benchmark::at_scale("mini").generate();
    let people = session.stream(SystemId::D, "/site/people/person");
    assert!(people.exists());
    let two = people.take(2);
    assert_eq!(two.len(), 2);
    assert_eq!(people.count(), people.prepared().execute().len());

    let mut sunk = String::new();
    let stats = people.write_to(&mut sunk);
    assert_eq!(stats.items, people.count());
    assert_eq!(
        sunk,
        serialize_sequence(
            people.prepared().store().as_ref(),
            &people.prepared().execute()
        )
    );
}
