//! The transaction subsystem, end to end: MVCC snapshot isolation
//! semantics, cross-backend result identity under structural updates,
//! the index-maintenance oracle (incremental == rebuilt-from-scratch),
//! WAL crash recovery on backend H, and non-blocking readers under a
//! concurrent writer.

use std::io::Write as _;
use std::sync::Arc;

use proptest::prelude::*;
use xmark::prelude::*;
use xmark::store::paged::{wal_path_for, LogRecord};
use xmark::store::Node;

/// Walk `path` tags from the root, taking the first match at each step.
fn descend(store: &dyn XmlStore, path: &[&str]) -> Node {
    let mut n = store.root();
    for tag in path {
        n = store
            .children_named_iter(n, tag)
            .next()
            .unwrap_or_else(|| panic!("no <{tag}> under node {}", n.0));
    }
    n
}

/// The first text-node child of `n`.
fn first_text_child(store: &dyn XmlStore, n: Node) -> Node {
    store
        .children_iter(n)
        .find(|&c| store.is_text_node(c))
        .unwrap_or_else(|| panic!("node {} has no text child", n.0))
}

const NEW_BIDDER: &str = "<bidder><date>28/07/2026</date><time>12:00:00</time>\
     <personref person=\"person0\"/><increase>9.50</increase></bidder>";

const NEW_PERSON: &str = "<person id=\"txnperson0\"><name>Txn Tester</name>\
     <emailaddress>mailto:txn@example.invalid</emailaddress></person>";

#[test]
fn pinned_snapshots_never_move_and_commits_publish_epochs() {
    let doc = generate_document(0.001);
    let versioned = VersionedStore::new(Arc::from(load_system(SystemId::A, &doc.xml).store));
    let s0 = versioned.snapshot();
    assert_eq!(s0.epoch(), 0);
    let root = s0.root();
    let bidders_before = s0.count_descendants_named(root, "bidder");
    let nodes_before = s0.node_count();

    // Insert a bidder into the first open auction.
    let auction = descend(s0.as_ref(), &["open_auctions", "open_auction"]);
    let mut txn = versioned.begin();
    txn.insert_subtree(auction, NEW_BIDDER);
    let info = txn.commit().expect("insert commits");
    assert_eq!(info.epoch, 1);

    // The pinned snapshot still answers from epoch 0…
    assert_eq!(s0.count_descendants_named(root, "bidder"), bidders_before);
    assert_eq!(s0.node_count(), nodes_before);
    // …while the new snapshot sees the bidder (4 elements + 4 texts).
    let s1 = versioned.snapshot();
    assert_eq!(s1.epoch(), 1);
    assert_eq!(
        s1.count_descendants_named(root, "bidder"),
        bidders_before + 1
    );
    assert_eq!(s1.node_count(), nodes_before + 8);

    // The inserted bidder is the auction's *last* bidder in document
    // order, and document-order comparison ranks it after base nodes.
    let last = s1
        .children_named_iter(auction, "bidder")
        .last()
        .expect("inserted bidder is listed");
    assert!(s1.doc_order_key(last) > s1.doc_order_key(auction));

    // Replace the new bidder's increase text and verify through the
    // overlay reads.
    let inc = s1
        .children_named_iter(last, "increase")
        .next()
        .expect("bidder has an increase");
    let inc_text = first_text_child(s1.as_ref(), inc);
    let mut txn = versioned.begin();
    txn.replace_text(inc_text, "11.00");
    txn.replace_attr(
        s1.children_named_iter(last, "personref")
            .next()
            .expect("bidder has a personref"),
        "person",
        "person1",
    );
    txn.commit().expect("text+attr commit");
    let s2 = versioned.snapshot();
    assert_eq!(s2.text(inc_text), Some("11.00"));
    assert_eq!(s1.text(inc_text), Some("9.50"), "epoch 1 stays pinned");
    let personref = s2
        .children_named_iter(last, "personref")
        .next()
        .expect("still there");
    assert_eq!(
        s2.attribute(personref, "person").as_deref(),
        Some("person1")
    );

    // Delete the bidder again: counts return to the baseline.
    let mut txn = versioned.begin();
    txn.delete_subtree(last);
    txn.commit().expect("delete commits");
    let s3 = versioned.snapshot();
    assert_eq!(s3.count_descendants_named(root, "bidder"), bidders_before);
    assert_eq!(s3.node_count(), nodes_before);
    assert_eq!(s3.epoch(), 3);
}

#[test]
fn first_committer_wins_and_losers_get_a_conflict() {
    let doc = generate_document(0.001);
    let versioned = VersionedStore::new(Arc::from(load_system(SystemId::D, &doc.xml).store));
    let s = versioned.snapshot();
    let auction = descend(s.as_ref(), &["open_auctions", "open_auction"]);

    let mut winner = versioned.begin();
    let mut loser = versioned.begin();
    winner.insert_subtree(auction, NEW_BIDDER);
    loser.insert_subtree(auction, NEW_BIDDER);
    winner.commit().expect("first committer wins");
    match loser.commit() {
        Err(TxnError::Conflict) => {}
        other => panic!("stale transaction must conflict, got {other:?}"),
    }

    // Validation errors surface as typed errors, not panics.
    let mut bad = versioned.begin();
    bad.insert_subtree(Node(u32::MAX - 1), NEW_BIDDER);
    assert!(matches!(bad.commit(), Err(TxnError::NodeMissing(_))));
    let s = versioned.snapshot();
    let mut bad = versioned.begin();
    bad.delete_subtree(s.root());
    assert!(matches!(bad.commit(), Err(TxnError::RootImmutable)));
}

/// The same update script produces byte-identical answers on every
/// in-memory backend — structural updates preserve the repo's
/// cross-backend equivalence invariant.
#[test]
fn updated_stores_answer_queries_byte_identically_across_backends() {
    let doc = generate_document(0.002);
    let queries = [1, 2, 3, 4, 8, 13, 17, 20];
    let mut reference: Option<Vec<String>> = None;
    for system in [SystemId::A, SystemId::D, SystemId::G] {
        let versioned = VersionedStore::new(Arc::from(load_system(system, &doc.xml).store));
        apply_update_script(&versioned);
        let snap = versioned.snapshot();
        let outputs: Vec<String> = queries
            .iter()
            .map(|&q| canonical_output(snap.as_ref(), q))
            .collect();
        match &reference {
            None => reference = Some(outputs),
            Some(expected) => {
                for (i, &q) in queries.iter().enumerate() {
                    assert_eq!(
                        &outputs[i], &expected[i],
                        "Q{q} diverged on {system} after updates"
                    );
                }
            }
        }
    }
}

/// One fixed update script, located structurally so it applies to any
/// backend: grow an auction, add a person, prune a closed auction,
/// rewrite a price.
fn apply_update_script(versioned: &Arc<VersionedStore>) {
    let s = versioned.snapshot();
    let auction = descend(s.as_ref(), &["open_auctions", "open_auction"]);
    let people = descend(s.as_ref(), &["people"]);
    let mut txn = versioned.begin();
    txn.insert_subtree(auction, NEW_BIDDER);
    txn.insert_subtree(people, NEW_PERSON);
    txn.commit().expect("insert script commits");

    let s = versioned.snapshot();
    if let Some(closed) = s
        .children_named_iter(descend(s.as_ref(), &["closed_auctions"]), "closed_auction")
        .next()
    {
        let mut txn = versioned.begin();
        txn.delete_subtree(closed);
        txn.commit().expect("delete script commits");
    }

    let s = versioned.snapshot();
    let price = descend(s.as_ref(), &["open_auctions", "open_auction", "current"]);
    let mut txn = versioned.begin();
    txn.replace_text(first_text_child(s.as_ref(), price), "424.42");
    txn.commit().expect("text script commits");
}

// ---- index-maintenance oracle ---------------------------------------------

/// Normalize a child-values map for comparison: a maintained map may
/// keep an entry whose vec emptied out, a rebuilt one may omit it —
/// both answer `get()` with the empty slice.
fn normalized(
    map: std::collections::HashMap<u32, Vec<u32>>,
) -> std::collections::BTreeMap<u32, Vec<u32>> {
    map.into_iter().filter(|(_, v)| !v.is_empty()).collect()
}

/// Assert the maintained indexes of `snap` answer identically to a
/// fresh rebuild over the same snapshot.
fn assert_indexes_match_rebuild(snap: &SnapshotStore, context: &str) {
    let rebuilt = IndexManager::new();
    let fresh = rebuilt.element(snap);
    let kept = snap.indexes().element(snap);
    assert_eq!(
        kept.elements(),
        fresh.elements(),
        "{context}: element count drifted"
    );
    let mut tags: Vec<&String> = fresh.shared_postings().keys().collect();
    tags.extend(kept.shared_postings().keys());
    tags.sort();
    tags.dedup();
    for tag in tags {
        assert_eq!(
            kept.postings(tag),
            fresh.postings(tag),
            "{context}: postings of <{tag}> drifted"
        );
    }
    // Subtree stabbing must never be *claimed* when a rebuild would not
    // claim it (over-conservatism is allowed, wrong slices are not).
    if kept.ordered() {
        assert!(
            fresh.ordered(),
            "{context}: maintained index claims ordered postings a rebuild rejects"
        );
    }

    let kept_ids = snap.indexes().attribute(snap, "id");
    let fresh_ids = rebuilt.attribute(snap, "id");
    let kept_map: std::collections::BTreeMap<String, u32> =
        kept_ids.clone_map().into_iter().collect();
    let fresh_map: std::collections::BTreeMap<String, u32> =
        fresh_ids.clone_map().into_iter().collect();
    assert_eq!(kept_map, fresh_map, "{context}: @id index drifted");

    for tag in ["increase", "current"] {
        let kept_cv = snap
            .indexes()
            .child_values(snap, tag)
            .expect("value persistence is on");
        let fresh_cv = rebuilt
            .child_values(snap, tag)
            .expect("value persistence is on");
        assert_eq!(
            normalized(kept_cv.clone_map()),
            normalized(fresh_cv.clone_map()),
            "{context}: cvals|{tag} drifted"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The oracle: after a randomized update sequence, the incrementally
    /// maintained index manager answers identically to one rebuilt from
    /// scratch over the final snapshot — on every backend.
    #[test]
    fn maintained_indexes_match_rebuilt_from_scratch(
        script in proptest::collection::vec((0u8..5, 0usize..64, 0u32..1000), 1..7),
    ) {
        let doc = generate_document(0.001);
        for system in SystemId::EXTENDED {
            let versioned =
                VersionedStore::new(Arc::from(load_system(system, &doc.xml).store));
            // Warm the structures maintenance must carry forward.
            {
                let s = versioned.snapshot();
                s.indexes().build_all(s.as_ref());
                s.indexes().child_values(s.as_ref(), "increase");
                s.indexes().child_values(s.as_ref(), "current");
            }
            let mut uniq = 0u32;
            for &(kind, selector, value) in &script {
                let s = versioned.snapshot();
                let mut txn = versioned.begin();
                let applied = apply_random_op(s.as_ref(), &mut txn, kind, selector, value, &mut uniq);
                if !applied {
                    continue;
                }
                txn.commit().expect("scripted op commits");
                let snap = versioned.snapshot();
                assert_indexes_match_rebuild(
                    &snap,
                    &format!("{system} after op {kind}/{selector}"),
                );
            }
        }
    }
}

/// Translate one `(kind, selector, value)` triple into a transaction
/// operation against whatever the current snapshot looks like. Returns
/// false when no suitable target exists (the op is skipped).
fn apply_random_op(
    s: &dyn XmlStore,
    txn: &mut Transaction,
    kind: u8,
    selector: usize,
    value: u32,
    uniq: &mut u32,
) -> bool {
    let root = s.root();
    let pick = |tag: &str, selector: usize| -> Option<Node> {
        let all: Vec<Node> = s.descendants_named_iter(root, tag).collect();
        if all.is_empty() {
            None
        } else {
            Some(all[selector % all.len()])
        }
    };
    match kind {
        0 => match pick("open_auction", selector) {
            Some(auction) => {
                txn.insert_subtree(auction, NEW_BIDDER);
                true
            }
            None => false,
        },
        1 => match pick("people", 0) {
            Some(people) => {
                *uniq += 1;
                txn.insert_subtree(
                    people,
                    &format!(
                        "<person id=\"txnrand{uniq}\"><name>R {value}</name>\
                         <emailaddress>mailto:r{uniq}@example.invalid</emailaddress></person>"
                    ),
                );
                true
            }
            None => false,
        },
        2 => match pick("bidder", selector).or_else(|| pick("closed_auction", selector)) {
            Some(victim) => {
                txn.delete_subtree(victim);
                true
            }
            None => false,
        },
        3 => match pick("increase", selector) {
            Some(increase) => match s.children_iter(increase).find(|&c| s.is_text_node(c)) {
                Some(text) => {
                    txn.replace_text(text, &format!("{value}.00"));
                    true
                }
                None => false,
            },
            None => false,
        },
        _ => match pick("personref", selector) {
            Some(personref) => {
                txn.replace_attr(personref, "person", &format!("person{}", value % 7));
                true
            }
            None => false,
        },
    }
}

// ---- crash recovery on backend H ------------------------------------------

#[test]
fn backend_h_replays_committed_and_discards_uncommitted_after_crash() {
    let session = Benchmark::at_factor(0.001).generate();
    let dir = std::env::temp_dir().join(format!("xmark-txn-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("crash.xmk");
    drop(session.persist_paged(&path, None).expect("persist H"));

    // The in-memory reference: System A with the same committed script.
    let reference = VersionedStore::new(Arc::from(load_system(SystemId::A, session.xml()).store));
    apply_update_script(&reference);
    let reference_snap = reference.snapshot();

    {
        // Run the same committed script against H…
        let (versioned, report) = open_paged_versioned(&path, None).expect("clean open");
        assert_eq!(report.replayed, 0);
        assert_eq!(report.truncated_bytes, 0);
        apply_update_script(&versioned);
        // …then simulate a crash mid-commit: an in-flight transaction
        // logged operations but never its commit record…
        let wal = versioned.base().txn_wal().expect("backend H has a WAL");
        wal.append(&LogRecord::TxnBegin { txn: 999 });
        wal.append(&LogRecord::TxnDelete {
            txn: 999,
            node: 1,
            undo_xml: String::new(),
        });
        wal.flush_all().expect("flush the in-flight records");
        // …and the process dies here (drop without further commits).
    }
    // Torn tail: a partial record hit the disk before the crash.
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(wal_path_for(&path))
            .expect("open WAL for tearing");
        file.write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 0x04, 0x00])
            .expect("append torn bytes");
    }

    let (recovered, report) = open_paged_versioned(&path, None).expect("recovery");
    assert_eq!(report.replayed, 3, "the three committed txns replay");
    assert_eq!(report.discarded, 1, "the in-flight txn rolls back");
    assert!(report.truncated_bytes >= 6, "the torn tail is cut");
    let snap = recovered.snapshot();
    assert_eq!(snap.epoch(), 3);

    // Cold-reopened H serves every benchmark query byte-identically to
    // the in-memory reference that committed the same script.
    for q in 1..=20usize {
        assert_eq!(
            canonical_output(snap.as_ref(), q),
            canonical_output(reference_snap.as_ref(), q),
            "Q{q} diverged between recovered H and updated A"
        );
    }

    // A second recovery is idempotent: the log already ends cleanly.
    drop(recovered);
    let (again, report) = open_paged_versioned(&path, None).expect("idempotent recovery");
    assert_eq!(report.replayed, 3);
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(
        canonical_output(again.snapshot().as_ref(), 13),
        canonical_output(reference_snap.as_ref(), 13),
    );
    drop(again);
    std::fs::remove_dir_all(&dir).ok();
}

// ---- concurrent readers under a writer ------------------------------------

#[test]
fn readers_pin_snapshots_while_the_writer_commits() {
    let doc = generate_document(0.001);
    let versioned = VersionedStore::new(Arc::from(load_system(SystemId::A, &doc.xml).store));
    let service = QueryService::start_source(
        Arc::clone(&versioned) as Arc<dyn StoreSource>,
        3,
        DEFAULT_PLAN_CACHE,
    );
    let auctions: Vec<Node> = {
        let s = versioned.snapshot();
        s.descendants_named_iter(s.root(), "open_auction").collect()
    };
    let mut i = 0usize;
    let mut write = || -> Option<std::time::Duration> {
        let target = auctions[i % auctions.len()];
        i += 1;
        let start = std::time::Instant::now();
        let mut txn = versioned.begin();
        txn.insert_subtree(target, NEW_BIDDER);
        txn.commit().expect("writer lane commit");
        Some(start.elapsed())
    };
    // 10 writes per 100 reads; the collector panics on any same-epoch
    // result divergence — the torn-read detector.
    let report = service.run_mixed(&[1, 8, 13], 60, 10, &mut write);
    assert_eq!(report.read.requests, 60);
    assert!(
        report.commits >= 5,
        "writer lane committed {}",
        report.commits
    );
    assert!(
        report.epochs_observed >= 2,
        "reads must overlap at least one commit (saw {} epochs)",
        report.epochs_observed
    );
    assert!(report.commit_p50 <= report.commit_p95);
}
